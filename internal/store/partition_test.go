package store

import (
	"errors"
	"fmt"
	"sort"
	"testing"
)

// Partitioned-listing conformance: both engines must present exactly the
// monolithic listing when the partitions are reassembled, gate each
// partition on its own version, and keep untouched partitions' versions
// still — the contracts the streaming scatter-gather List builds on.

// gatherParts reads every partition and reassembles the full listing.
func gatherParts(t *testing.T, st Store, name string) (all []Ref, maxVer uint64) {
	t.Helper()
	total, err := st.Partitions(name)
	if err != nil {
		t.Fatalf("partitions: %v", err)
	}
	for pi := 0; pi < total; pi++ {
		members, ver, notMod, err := st.ListPart(name, pi, 0)
		if err != nil {
			t.Fatalf("listPart %d: %v", pi, err)
		}
		if notMod {
			t.Fatalf("listPart %d: notModified with no gate", pi)
		}
		if !sort.SliceIsSorted(members, func(i, j int) bool { return members[i].ID < members[j].ID }) {
			t.Fatalf("listPart %d: members not sorted", pi)
		}
		all = append(all, members...)
		if ver > maxVer {
			maxVer = ver
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all, maxVer
}

// partVersions snapshots every partition's version.
func partVersions(t *testing.T, st Store, name string) []uint64 {
	t.Helper()
	total, err := st.Partitions(name)
	if err != nil {
		t.Fatalf("partitions: %v", err)
	}
	out := make([]uint64, total)
	for pi := 0; pi < total; pi++ {
		_, ver, _, err := st.ListPart(name, pi, 0)
		if err != nil {
			t.Fatalf("listPart %d: %v", pi, err)
		}
		out[pi] = ver
	}
	return out
}

func TestPartitionedListingMatchesMonolithic(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		for i := 0; i < 100; i++ {
			id := ObjectID(fmt.Sprintf("elem-%03d", i))
			if _, err := st.Add("c", Ref{ID: id, Node: "n1"}); err != nil {
				t.Fatal(err)
			}
		}
		mono, monoVer, err := st.List("c")
		if err != nil {
			t.Fatal(err)
		}
		parts, maxVer := gatherParts(t, st, "c")
		if len(parts) != len(mono) {
			t.Fatalf("partitioned listing has %d members, monolithic %d", len(parts), len(mono))
		}
		for i := range mono {
			if parts[i] != mono[i] {
				t.Fatalf("member %d: partitioned %+v != monolithic %+v", i, parts[i], mono[i])
			}
		}
		// Partition versions are drawn from the collection counter, so the
		// newest partition is exactly the collection version.
		if maxVer != monoVer {
			t.Fatalf("max partition version = %d, collection version = %d", maxVer, monoVer)
		}
		lv, err := st.ListVersion("c")
		if err != nil || lv != monoVer {
			t.Fatalf("ListVersion = %d, %v (want %d)", lv, err, monoVer)
		}
	})
}

func TestListPartVersionGating(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		for i := 0; i < 64; i++ {
			if _, err := st.Add("c", Ref{ID: ObjectID(fmt.Sprintf("e%02d", i)), Node: "n1"}); err != nil {
				t.Fatal(err)
			}
		}
		vers := partVersions(t, st, "c")
		total := len(vers)
		// Gating each partition at its own version answers NotModified
		// with no members.
		for pi := 0; pi < total; pi++ {
			members, ver, notMod, err := st.ListPart("c", pi, vers[pi])
			if err != nil {
				t.Fatal(err)
			}
			if !notMod || members != nil || ver != vers[pi] {
				t.Fatalf("part %d gated at own version: notMod=%v members=%v ver=%d", pi, notMod, members, ver)
			}
		}
		// Mutating one member invalidates exactly its partition's gate.
		target := Ref{ID: "e00", Node: "n2"}
		if _, err := st.Add("c", target); err != nil {
			t.Fatal(err)
		}
		after := partVersions(t, st, "c")
		touched := -1
		for pi := 0; pi < total; pi++ {
			if after[pi] != vers[pi] {
				if touched != -1 {
					t.Fatalf("partitions %d and %d both moved for one add", touched, pi)
				}
				touched = pi
			}
		}
		if touched == -1 {
			t.Fatal("no partition version moved after add")
		}
		for pi := 0; pi < total; pi++ {
			members, _, notMod, err := st.ListPart("c", pi, vers[pi])
			if err != nil {
				t.Fatal(err)
			}
			if pi == touched {
				if notMod {
					t.Fatalf("touched partition %d still gated NotModified", pi)
				}
				found := false
				for _, m := range members {
					if m == target {
						found = true
					}
				}
				if !found {
					t.Fatalf("touched partition %d listing lacks the new ref", pi)
				}
			} else if !notMod {
				t.Fatalf("untouched partition %d lost its NotModified gate", pi)
			}
		}
	})
}

func TestGhostGCBumpsOnlyAffectedPartition(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		for i := 0; i < 64; i++ {
			if _, err := st.Add("c", Ref{ID: ObjectID(fmt.Sprintf("g%02d", i)), Node: "n1"}); err != nil {
				t.Fatal(err)
			}
		}
		token, err := st.BeginGrow("c")
		if err != nil {
			t.Fatal(err)
		}
		// Removing under the window leaves a ghost in its partition.
		if _, deferred, _, err := st.Remove("c", "g00"); err != nil || !deferred {
			t.Fatalf("remove under window: deferred=%v err=%v", deferred, err)
		}
		vers := partVersions(t, st, "c")
		reclaim, err := st.EndGrow("c", token)
		if err != nil {
			t.Fatal(err)
		}
		if len(reclaim) != 1 || reclaim[0].ID != "g00" {
			t.Fatalf("reclaim = %v", reclaim)
		}
		after := partVersions(t, st, "c")
		moved := 0
		for pi := range vers {
			if after[pi] != vers[pi] {
				moved++
				// The GC'd ghost must vanish from this partition's listing.
				members, _, _, err := st.ListPart("c", pi, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range members {
					if m.ID == "g00" {
						t.Fatal("GC'd ghost still listed")
					}
				}
			}
		}
		if moved != 1 {
			t.Fatalf("ghost GC moved %d partition versions, want exactly 1", moved)
		}
	})
}

func TestListPartOutOfRange(t *testing.T) {
	engines(t, func(t *testing.T, st Store) {
		mustColl(t, st, "c")
		total, err := st.Partitions("c")
		if err != nil || total <= 0 {
			t.Fatalf("partitions = %d, %v", total, err)
		}
		for _, pi := range []int{-1, total} {
			if _, _, _, err := st.ListPart("c", pi, 0); !errors.Is(err, ErrBadPartition) {
				t.Fatalf("listPart %d: err = %v, want ErrBadPartition", pi, err)
			}
		}
		if _, _, _, err := st.ListPart("nope", 0, 0); !errors.Is(err, ErrNoCollection) {
			t.Fatalf("listPart on missing collection: %v", err)
		}
	})
}

func TestPartitionCountConfigured(t *testing.T) {
	st := NewSharded(Config{Shards: 2, Partitions: 5})
	mustColl(t, st, "c")
	if total, err := st.Partitions("c"); err != nil || total != 5 {
		t.Fatalf("partitions = %d, %v (want 5)", total, err)
	}
	// The count is part of the durable image: a restore keeps the layout.
	st2 := NewSharded(Config{Shards: 2})
	st2.Import(st.Export())
	if total, err := st2.Partitions("c"); err != nil || total != 5 {
		t.Fatalf("restored partitions = %d, %v (want 5)", total, err)
	}
}
