package store

import (
	"fmt"
	"sort"

	"weaksets/internal/netsim"
)

// collState is the unsynchronised bookkeeping for one collection,
// shared by the engines: Locked serialises access with its global
// mutex, Sharded with a per-collection RWMutex. None of these methods
// lock.
type collState struct {
	name    string
	version uint64
	members map[ObjectID]Ref
	// ghosts holds members removed while a grow-only window was open;
	// they are still listed so that, during the window, the set only
	// grows (§3.3: "create copies of any deleted objects and then
	// garbage collect these 'ghost' copies upon termination").
	ghosts map[ObjectID]Ref
	// pendingDelete are object refs whose data must be deleted once the
	// last grow token drains (unless the member was re-added meanwhile).
	pendingDelete map[ObjectID]Ref
	pins          map[int64][]Ref
	nextPin       int64
	tokens        map[int64]bool
	nextToken     int64
	// replicas are nodes receiving lazy pushes of this collection.
	replicas []netsim.NodeID
	// replicaVersion, on a replica, is the version of the last applied
	// sync; pushes with older versions are ignored.
	replicaVersion uint64
}

func newCollState(name string) *collState {
	return &collState{
		name:          name,
		members:       make(map[ObjectID]Ref),
		ghosts:        make(map[ObjectID]Ref),
		pendingDelete: make(map[ObjectID]Ref),
		pins:          make(map[int64][]Ref),
		tokens:        make(map[int64]bool),
	}
}

// listedMembers is the collection as observed by List: live members
// plus ghosts, sorted by ID.
func (c *collState) listedMembers() []Ref {
	out := make([]Ref, 0, len(c.members)+len(c.ghosts))
	for _, r := range c.members {
		out = append(out, r)
	}
	for id, r := range c.ghosts {
		if _, live := c.members[id]; !live {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// memberSnapshot is the live membership only, sorted by ID — what a pin
// captures.
func (c *collState) memberSnapshot() []Ref {
	snap := make([]Ref, 0, len(c.members))
	for _, ref := range c.members {
		snap = append(snap, ref)
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID })
	return snap
}

func (c *collState) add(ref Ref) uint64 {
	c.members[ref.ID] = ref
	// Re-adding a ghosted member revives it: the deferred delete must
	// not fire.
	delete(c.ghosts, ref.ID)
	delete(c.pendingDelete, ref.ID)
	c.version++
	return c.version
}

func (c *collState) remove(id ObjectID) (Ref, bool, uint64, error) {
	ref, member := c.members[id]
	if !member {
		return Ref{}, false, 0, fmt.Errorf("remove %q from %q: %w", id, c.name, ErrNotFound)
	}
	deferred := len(c.tokens) > 0
	if deferred {
		// Grow-only window open: keep a ghost so the set, as listed,
		// only grows for the duration of the window.
		c.ghosts[id] = ref
		c.pendingDelete[id] = ref
	}
	delete(c.members, id)
	c.version++
	return ref, deferred, c.version, nil
}

func (c *collState) pin() int64 {
	c.nextPin++
	c.pins[c.nextPin] = c.memberSnapshot()
	return c.nextPin
}

func (c *collState) listPinned(pin int64) ([]Ref, error) {
	snap, found := c.pins[pin]
	if !found {
		return nil, fmt.Errorf("list %q pin %d: %w", c.name, pin, ErrBadPin)
	}
	return append([]Ref(nil), snap...), nil
}

func (c *collState) unpin(pin int64) error {
	if _, found := c.pins[pin]; !found {
		return fmt.Errorf("unpin %q pin %d: %w", c.name, pin, ErrBadPin)
	}
	delete(c.pins, pin)
	return nil
}

func (c *collState) beginGrow() int64 {
	c.nextToken++
	c.tokens[c.nextToken] = true
	return c.nextToken
}

func (c *collState) endGrow(token int64) ([]Ref, error) {
	if !c.tokens[token] {
		return nil, fmt.Errorf("end grow %q token %d: %w", c.name, token, ErrBadToken)
	}
	delete(c.tokens, token)
	var reclaim []Ref
	if len(c.tokens) == 0 {
		// Last token drained: garbage collect the ghosts (§3.3).
		listedGhost := false
		for id, ref := range c.pendingDelete {
			if _, live := c.members[id]; !live {
				reclaim = append(reclaim, ref)
			}
		}
		for id := range c.ghosts {
			if _, live := c.members[id]; !live {
				listedGhost = true
				break
			}
		}
		c.ghosts = make(map[ObjectID]Ref)
		c.pendingDelete = make(map[ObjectID]Ref)
		if listedGhost {
			// Reclaiming listed ghosts changes the listing; bump the
			// version so version-gated reads cannot miss it.
			c.version++
		}
	}
	return reclaim, nil
}

func (c *collState) stats() CollStats {
	return CollStats{
		Members: len(c.members),
		Ghosts:  len(c.ghosts),
		Pins:    len(c.pins),
		Tokens:  len(c.tokens),
		Version: c.version,
	}
}

// applySync applies a replication push and reports whether it changed
// the collection (stale pushes are ignored).
func (c *collState) applySync(members []Ref, version uint64) bool {
	if version <= c.replicaVersion {
		return false
	}
	c.replicaVersion = version
	c.version = version
	c.members = make(map[ObjectID]Ref, len(members))
	for _, ref := range members {
		c.members[ref.ID] = ref
	}
	return true
}

// exportState captures the durable image of the collection.
func (c *collState) exportState() CollectionState {
	return CollectionState{
		Name:           c.name,
		Version:        c.version,
		ReplicaVersion: c.replicaVersion,
		Members:        c.memberSnapshot(),
		Replicas:       append([]netsim.NodeID(nil), c.replicas...),
	}
}

// collFromState rebuilds a collection from its durable image.
func collFromState(cs CollectionState) *collState {
	c := newCollState(cs.Name)
	c.version = cs.Version
	c.replicaVersion = cs.ReplicaVersion
	c.replicas = append([]netsim.NodeID(nil), cs.Replicas...)
	for _, ref := range cs.Members {
		c.members[ref.ID] = ref
	}
	return c
}
