package store

import (
	"fmt"
	"sort"

	"weaksets/internal/netsim"
)

// DefaultPartitions is the listing partition count used when an engine's
// configuration leaves it 0. Partition membership is by FNV-1a hash of
// the object ID, so a collection's partition layout is stable across
// restarts as long as the count is (the count is persisted with the
// collection).
const DefaultPartitions = 16

// collPart is one listing partition: an independent slice of the
// membership with its own version. Partition versions are drawn from the
// collection's global change counter, so they are mutually comparable
// and max(partition versions) == the collection version.
type collPart struct {
	version uint64
	members map[ObjectID]Ref
	// ghosts holds members removed while a grow-only window was open;
	// they are still listed so that, during the window, the set only
	// grows (§3.3: "create copies of any deleted objects and then
	// garbage collect these 'ghost' copies upon termination").
	ghosts map[ObjectID]Ref
}

// collState is the unsynchronised bookkeeping for one collection,
// shared by the engines: Locked serialises access with its global
// mutex, Sharded with a per-collection RWMutex. None of these methods
// lock.
//
// Membership is hash-partitioned into len(parts) independent slices so
// engines can snapshot, version-gate, and stream each partition on its
// own; every mutation bumps the global version counter and stamps it
// onto the partition it touched, so a partition's version is "the
// global counter the last time this partition changed".
type collState struct {
	name    string
	version uint64
	parts   []collPart
	// pendingDelete are object refs whose data must be deleted once the
	// last grow token drains (unless the member was re-added meanwhile).
	pendingDelete map[ObjectID]Ref
	pins          map[int64][]Ref
	nextPin       int64
	tokens        map[int64]bool
	nextToken     int64
	// replicas are nodes receiving lazy pushes of this collection.
	replicas []netsim.NodeID
	// replicaVersion, on a replica, is the version of the last applied
	// sync; pushes with older versions are ignored.
	replicaVersion uint64
}

func newCollState(name string, partitions int) *collState {
	if partitions <= 0 {
		partitions = DefaultPartitions
	}
	c := &collState{
		name:          name,
		parts:         make([]collPart, partitions),
		pendingDelete: make(map[ObjectID]Ref),
		pins:          make(map[int64][]Ref),
		tokens:        make(map[int64]bool),
	}
	for i := range c.parts {
		c.parts[i].members = make(map[ObjectID]Ref)
		c.parts[i].ghosts = make(map[ObjectID]Ref)
	}
	return c
}

// partOf maps an object ID to its listing partition (FNV-1a).
func (c *collState) partOf(id ObjectID) int {
	if len(c.parts) == 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(len(c.parts)))
}

// partitions reports the listing partition count.
func (c *collState) partitions() int { return len(c.parts) }

// memberCount is the live membership size across all partitions.
func (c *collState) memberCount() int {
	n := 0
	for i := range c.parts {
		n += len(c.parts[i].members)
	}
	return n
}

func (c *collState) ghostCount() int {
	n := 0
	for i := range c.parts {
		n += len(c.parts[i].ghosts)
	}
	return n
}

// appendListed appends partition pi's listed membership — live members
// plus ghosts not re-added live — to out.
func (c *collState) appendListed(out []Ref, pi int) []Ref {
	p := &c.parts[pi]
	for _, r := range p.members {
		out = append(out, r)
	}
	for id, r := range p.ghosts {
		if _, live := p.members[id]; !live {
			out = append(out, r)
		}
	}
	return out
}

// listedMembers is the collection as observed by List: live members
// plus ghosts, sorted by ID.
func (c *collState) listedMembers() []Ref {
	out := make([]Ref, 0, c.memberCount()+c.ghostCount())
	for pi := range c.parts {
		out = c.appendListed(out, pi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// partListed is one partition's listed membership, sorted by ID, with
// the partition's version.
func (c *collState) partListed(pi int) ([]Ref, uint64) {
	out := c.appendListed(make([]Ref, 0, len(c.parts[pi].members)), pi)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, c.parts[pi].version
}

// memberSnapshot is the live membership only, sorted by ID — what a pin
// captures.
func (c *collState) memberSnapshot() []Ref {
	snap := make([]Ref, 0, c.memberCount())
	for pi := range c.parts {
		for _, ref := range c.parts[pi].members {
			snap = append(snap, ref)
		}
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i].ID < snap[j].ID })
	return snap
}

func (c *collState) add(ref Ref) uint64 {
	p := &c.parts[c.partOf(ref.ID)]
	p.members[ref.ID] = ref
	// Re-adding a ghosted member revives it: the deferred delete must
	// not fire.
	delete(p.ghosts, ref.ID)
	delete(c.pendingDelete, ref.ID)
	c.version++
	p.version = c.version
	return c.version
}

func (c *collState) remove(id ObjectID) (Ref, bool, uint64, error) {
	p := &c.parts[c.partOf(id)]
	ref, member := p.members[id]
	if !member {
		return Ref{}, false, 0, fmt.Errorf("remove %q from %q: %w", id, c.name, ErrNotFound)
	}
	deferred := len(c.tokens) > 0
	if deferred {
		// Grow-only window open: keep a ghost so the set, as listed,
		// only grows for the duration of the window.
		p.ghosts[id] = ref
		c.pendingDelete[id] = ref
	}
	delete(p.members, id)
	c.version++
	p.version = c.version
	return ref, deferred, c.version, nil
}

func (c *collState) pin() int64 {
	c.nextPin++
	c.pins[c.nextPin] = c.memberSnapshot()
	return c.nextPin
}

func (c *collState) listPinned(pin int64) ([]Ref, error) {
	snap, found := c.pins[pin]
	if !found {
		return nil, fmt.Errorf("list %q pin %d: %w", c.name, pin, ErrBadPin)
	}
	return append([]Ref(nil), snap...), nil
}

func (c *collState) unpin(pin int64) error {
	if _, found := c.pins[pin]; !found {
		return fmt.Errorf("unpin %q pin %d: %w", c.name, pin, ErrBadPin)
	}
	delete(c.pins, pin)
	return nil
}

func (c *collState) beginGrow() int64 {
	c.nextToken++
	c.tokens[c.nextToken] = true
	return c.nextToken
}

func (c *collState) endGrow(token int64) ([]Ref, error) {
	if !c.tokens[token] {
		return nil, fmt.Errorf("end grow %q token %d: %w", c.name, token, ErrBadToken)
	}
	delete(c.tokens, token)
	var reclaim []Ref
	if len(c.tokens) == 0 {
		// Last token drained: garbage collect the ghosts (§3.3). Only
		// the partitions that actually listed a ghost change, so only
		// their versions move — a version-gated reader of an untouched
		// partition keeps getting NotModified.
		for id, ref := range c.pendingDelete {
			if _, live := c.parts[c.partOf(id)].members[id]; !live {
				reclaim = append(reclaim, ref)
			}
		}
		for pi := range c.parts {
			p := &c.parts[pi]
			if len(p.ghosts) == 0 {
				continue
			}
			listedGhost := false
			for id := range p.ghosts {
				if _, live := p.members[id]; !live {
					listedGhost = true
					break
				}
			}
			p.ghosts = make(map[ObjectID]Ref)
			if listedGhost {
				// Reclaiming listed ghosts changes the listing; bump the
				// version so version-gated reads cannot miss it.
				c.version++
				p.version = c.version
			}
		}
		c.pendingDelete = make(map[ObjectID]Ref)
	}
	return reclaim, nil
}

func (c *collState) stats() CollStats {
	return CollStats{
		Members:    c.memberCount(),
		Ghosts:     c.ghostCount(),
		Pins:       len(c.pins),
		Tokens:     len(c.tokens),
		Version:    c.version,
		Partitions: len(c.parts),
	}
}

// applySync applies a replication push and reports whether it changed
// the collection (stale pushes are ignored). A push replaces the whole
// membership, so every partition is rebuilt and stamped with the push's
// version.
func (c *collState) applySync(members []Ref, version uint64) bool {
	if version <= c.replicaVersion {
		return false
	}
	c.replicaVersion = version
	c.version = version
	for pi := range c.parts {
		c.parts[pi].members = make(map[ObjectID]Ref)
		c.parts[pi].version = version
	}
	for _, ref := range members {
		c.parts[c.partOf(ref.ID)].members[ref.ID] = ref
	}
	return true
}

// partVersions copies the per-partition version vector.
func (c *collState) partVersions() []uint64 {
	out := make([]uint64, len(c.parts))
	for pi := range c.parts {
		out[pi] = c.parts[pi].version
	}
	return out
}

// applySyncPart applies a per-partition replication push and reports
// whether it was accepted. The push carries the sender's partition count
// so a layout disagreement is detected and declined (the caller falls
// back to a full sync) instead of scattering members into the wrong
// partitions; a push at or below the partition's own version is stale
// and also declined. Accepted pushes replace only that partition's
// listed membership and advance the collection version monotonically.
func (c *collState) applySyncPart(partitions, part int, members []Ref, version uint64) bool {
	if partitions != len(c.parts) || part < 0 || part >= len(c.parts) {
		return false
	}
	p := &c.parts[part]
	if version <= p.version {
		return false
	}
	p.members = make(map[ObjectID]Ref, len(members))
	p.ghosts = make(map[ObjectID]Ref)
	for _, ref := range members {
		p.members[ref.ID] = ref
	}
	p.version = version
	if version > c.version {
		c.version = version
	}
	if version > c.replicaVersion {
		c.replicaVersion = version
	}
	return true
}

// exportState captures the durable image of the collection.
func (c *collState) exportState() CollectionState {
	return CollectionState{
		Name:           c.name,
		Version:        c.version,
		ReplicaVersion: c.replicaVersion,
		Partitions:     len(c.parts),
		Members:        c.memberSnapshot(),
		Replicas:       append([]netsim.NodeID(nil), c.replicas...),
	}
}

// collFromState rebuilds a collection from its durable image.
// defaultPartitions covers images persisted before listings were
// partitioned (Partitions == 0); every partition starts at the image's
// version, so version-gated reads against a restored collection are
// conservative rather than falsely NotModified.
func collFromState(cs CollectionState, defaultPartitions int) *collState {
	partitions := cs.Partitions
	if partitions <= 0 {
		partitions = defaultPartitions
	}
	c := newCollState(cs.Name, partitions)
	c.version = cs.Version
	c.replicaVersion = cs.ReplicaVersion
	c.replicas = append([]netsim.NodeID(nil), cs.Replicas...)
	for _, ref := range cs.Members {
		c.parts[c.partOf(ref.ID)].members[ref.ID] = ref
	}
	for pi := range c.parts {
		c.parts[pi].version = cs.Version
	}
	return c
}
