package store

import (
	"fmt"
	"sync"
	"time"
)

// ContentionConfig sizes one contention measurement: Workers goroutines
// hammer one engine with a read-heavy List/Get mix (the iterator hot
// path) plus an optional write fraction.
type ContentionConfig struct {
	// Engine selects "locked" or "sharded".
	Engine string `json:"engine"`
	// Shards configures the sharded engine (0 = DefaultShards).
	Shards int `json:"shards"`
	// Objects is the size of the seeded object table. Defaults to 1024.
	Objects int `json:"objects"`
	// Members is the seeded collection size. Defaults to 256.
	Members int `json:"members"`
	// Workers is the number of concurrent client goroutines.
	Workers int `json:"workers"`
	// OpsPerWorker is how many operations each worker issues. Defaults
	// to 20000.
	OpsPerWorker int `json:"ops_per_worker"`
	// WriteEvery makes every n-th operation a write (alternating object
	// Put and membership Add); 0 disables writes.
	WriteEvery int `json:"write_every"`
}

func (cfg ContentionConfig) withDefaults() ContentionConfig {
	if cfg.Objects <= 0 {
		cfg.Objects = 1024
	}
	if cfg.Members <= 0 {
		cfg.Members = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.OpsPerWorker <= 0 {
		cfg.OpsPerWorker = 20000
	}
	return cfg
}

// ContentionResult is one contention measurement.
type ContentionResult struct {
	Engine    string        `json:"engine"`
	Workers   int           `json:"workers"`
	TotalOps  int64         `json:"total_ops"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`
	PerOp     []OpStats     `json:"per_op"`
}

// NewEngine builds an engine by name ("locked" or "sharded").
func NewEngine(name string, shards int) (Store, error) {
	switch name {
	case "locked":
		return NewLocked(), nil
	case "sharded", "":
		return NewSharded(Config{Shards: shards}), nil
	}
	return nil, fmt.Errorf("store: unknown engine %q", name)
}

// contentionCollection is the collection name the runner seeds.
const contentionCollection = "bench"

// SeedContention fills an engine with the benchmark corpus: Objects
// objects ("o0000"...) and a collection "bench" whose first Members
// objects are members. It returns the object IDs.
func SeedContention(st Store, cfg ContentionConfig) ([]ObjectID, error) {
	cfg = cfg.withDefaults()
	ids := make([]ObjectID, cfg.Objects)
	for i := range ids {
		ids[i] = ObjectID(fmt.Sprintf("o%04d", i))
		if _, err := st.PutObject(Object{ID: ids[i], Data: make([]byte, 64)}); err != nil {
			return nil, err
		}
	}
	if err := st.CreateCollection(contentionCollection); err != nil {
		return nil, err
	}
	members := cfg.Members
	if members > len(ids) {
		members = len(ids)
	}
	for i := 0; i < members; i++ {
		if _, err := st.Add(contentionCollection, Ref{ID: ids[i], Node: "bench"}); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// RunContention builds, seeds, and hammers one engine, returning
// throughput plus the engine's own per-operation latency stats.
func RunContention(cfg ContentionConfig) (ContentionResult, error) {
	cfg = cfg.withDefaults()
	st, err := NewEngine(cfg.Engine, cfg.Shards)
	if err != nil {
		return ContentionResult{}, err
	}
	ids, err := SeedContention(st, cfg)
	if err != nil {
		return ContentionResult{}, err
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerWorker; i++ {
				switch {
				case cfg.WriteEvery > 0 && i%cfg.WriteEvery == 0:
					if (i/cfg.WriteEvery)%2 == 0 {
						id := ids[(i*31+w*7)%len(ids)]
						_, _ = st.PutObject(Object{ID: id, Data: make([]byte, 64)})
					} else {
						id := ids[(i*31+w*7)%cfg.Members]
						_, _ = st.Add(contentionCollection, Ref{ID: id, Node: "bench"})
					}
				case i%8 < 5:
					_, _, _ = st.List(contentionCollection)
				default:
					_, _ = st.GetObject(ids[(i*17+w*3)%len(ids)])
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int64(cfg.Workers) * int64(cfg.OpsPerWorker)
	res := ContentionResult{
		Engine:    cfg.Engine,
		Workers:   cfg.Workers,
		TotalOps:  total,
		Elapsed:   elapsed,
		OpsPerSec: float64(total) / elapsed.Seconds(),
		PerOp:     st.Stats().Ops,
	}
	if res.Engine == "" {
		res.Engine = "sharded"
	}
	return res, nil
}
