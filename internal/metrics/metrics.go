// Package metrics provides the small measurement toolkit the experiment
// harness uses: duration histograms with quantiles, counters, and aligned
// ASCII table rendering for the per-experiment reports.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram accumulates duration samples. It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
}

// Count reports the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range h.samples {
		total += s
	}
	return total / time.Duration(len(h.samples))
}

// Quantile reports the q-quantile (0 <= q <= 1), or 0 with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration { return h.Quantile(0) }

// FmtDur renders a duration in milliseconds with a sensible precision for
// tables.
func FmtDur(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms == 0:
		return "0"
	case ms < 10:
		return fmt.Sprintf("%.2fms", ms)
	case ms < 100:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fms", ms)
	}
}

// FmtRatio renders a unitless ratio.
func FmtRatio(r float64) string { return fmt.Sprintf("%.2f", r) }

// FmtPct renders a fraction as a percentage.
func FmtPct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// Table accumulates rows and renders them as an aligned ASCII table.
type Table struct {
	Title   string
	Headers []string

	mu   sync.Mutex
	rows [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := append([]string(nil), cells...)
	for len(row) < len(t.Headers) {
		row = append(row, "")
	}
	t.rows = append(t.rows, row)
}

// Rows returns a copy of the accumulated rows.
func (t *Table) Rows() [][]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(pad(h, widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	sb.Reset()
	for i := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(cell, widths[i]))
			} else {
				sb.WriteString(cell)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as CSV (header row first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
