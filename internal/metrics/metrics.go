// Package metrics provides the small measurement toolkit the experiment
// harness uses: duration histograms with quantiles, counters, and aligned
// ASCII table rendering for the per-experiment reports.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoir is the sample bound a zero-value Histogram uses.
const DefaultReservoir = 4096

// Histogram accumulates duration samples. It is safe for concurrent use.
// Count, Sum, Mean, Min, and Max are exact over every recorded sample;
// quantiles are computed over a bounded reservoir (Vitter's algorithm R)
// so memory stays fixed no matter how long the run. Below the bound the
// reservoir holds every sample and quantiles are exact too. The zero
// value is ready to use with the DefaultReservoir bound; NewHistogram
// picks a custom bound.
type Histogram struct {
	mu      sync.Mutex
	limit   int
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	samples []time.Duration
	rng     uint64
}

// NewHistogram creates a histogram whose reservoir keeps at most the
// given number of samples (values < 1 select DefaultReservoir).
func NewHistogram(reservoir int) *Histogram {
	if reservoir < 1 {
		reservoir = DefaultReservoir
	}
	return &Histogram{limit: reservoir}
}

func (h *Histogram) bound() int {
	if h.limit < 1 {
		return DefaultReservoir
	}
	return h.limit
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	bound := h.bound()
	if len(h.samples) < bound {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir full: replace a random slot so every sample seen so far
	// had equal probability bound/count of surviving.
	if idx := h.randN(h.count); idx < int64(bound) {
		h.samples[idx] = d
	}
}

// randN returns a pseudo-random int in [0, n) from an embedded
// xorshift64* stream (no global rand, deterministic per histogram).
func (h *Histogram) randN(n int64) int64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng >> 12
	h.rng ^= h.rng << 25
	h.rng ^= h.rng >> 27
	return int64((h.rng * 0x2545F4914F6CDD1D) % uint64(n))
}

// randFloat returns a pseudo-random float64 in [0, 1) from the same
// xorshift64* stream randN draws on.
func (h *Histogram) randFloat() float64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng >> 12
	h.rng ^= h.rng << 25
	h.rng ^= h.rng >> 27
	return float64((h.rng*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
}

// Dump is a serializable capture of a histogram: the exact aggregate
// fields plus the reservoir contents. It is the unit of cross-process
// merging — a node ships its Dump and a gateway folds it into a local
// histogram with MergeDump, so per-node series aggregate into one
// cluster view.
type Dump struct {
	Count   int64           `json:"count"`
	Sum     time.Duration   `json:"sumNs"`
	Min     time.Duration   `json:"minNs"`
	Max     time.Duration   `json:"maxNs"`
	Samples []time.Duration `json:"samplesNs,omitempty"`
}

// Dump captures the histogram's aggregates and reservoir under one lock
// acquisition.
func (h *Histogram) Dump() Dump {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Dump{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Samples: append([]time.Duration(nil), h.samples...),
	}
}

// MergeDump folds another histogram's dump into this one. Count, sum,
// min, and max stay exact. When the union of the two reservoirs exceeds
// the bound, the merged reservoir's composition is drawn as a
// hypergeometric split over the *items* each side represents (pick a
// side with probability proportional to its remaining exact count,
// remove one item, repeat bound times), then each side contributes that
// many uniform without-replacement draws from its reservoir — a uniform
// subsample of a uniform sample is uniform, so merged quantiles carry
// the same rank-error guarantee as a single reservoir of the union.
// Below the bound the merge is exact. A dump that claims a count but
// carries no samples (a truncated serialization) still merges its
// aggregates; the reservoir is left alone.
func (h *Histogram) MergeDump(d Dump) {
	if d.Count <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		h.min, h.max = d.Min, d.Max
	} else {
		if d.Min < h.min {
			h.min = d.Min
		}
		if d.Max > h.max {
			h.max = d.Max
		}
	}
	prevCount := h.count
	h.count += d.Count
	h.sum += d.Sum
	if len(d.Samples) == 0 {
		return
	}
	bound := h.bound()
	if len(h.samples)+len(d.Samples) <= bound {
		h.samples = append(h.samples, d.Samples...)
		return
	}
	a := h.samples
	b := append([]time.Duration(nil), d.Samples...)
	// Draw the composition: how many of the bound slots come from each
	// side, as if picking bound items uniformly without replacement from
	// the union of prevCount + d.Count items.
	remA, remB := prevCount, d.Count
	kA, kB := 0, 0
	for i := 0; i < bound; i++ {
		if remB == 0 || (remA > 0 && h.randFloat()*float64(remA+remB) < float64(remA)) {
			kA++
			remA--
		} else {
			kB++
			remB--
		}
	}
	// A side cannot contribute more samples than its reservoir holds
	// (its count exceeded its bound); spill the shortfall to the other.
	if kA > len(a) {
		kB += kA - len(a)
		kA = len(a)
	}
	if kB > len(b) {
		kA += kB - len(b)
		kB = len(b)
	}
	if kA > len(a) {
		kA = len(a)
	}
	merged := make([]time.Duration, 0, kA+kB)
	for j := 0; j < kA; j++ {
		i := h.randN(int64(len(a)))
		merged = append(merged, a[i])
		a[i] = a[len(a)-1]
		a = a[:len(a)-1]
	}
	for j := 0; j < kB; j++ {
		i := h.randN(int64(len(b)))
		merged = append(merged, b[i])
		b[i] = b[len(b)-1]
		b = b[:len(b)-1]
	}
	h.samples = merged
}

// Merge folds another histogram into this one (see MergeDump). The
// other histogram is captured under its own lock first, so concurrent
// writers on either side stay safe; merging a histogram into itself
// double-counts and is a caller bug.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.MergeDump(other.Dump())
}

// Count reports the number of samples recorded (exact, not bounded by
// the reservoir).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Sum reports the exact total of all recorded samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean reports the exact arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Samples returns a copy of the current reservoir contents.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]time.Duration(nil), h.samples...)
}

// Quantile reports the q-quantile (0 <= q <= 1), or 0 with no samples.
// Min and max are exact; interior quantiles come from the reservoir.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 || len(h.samples) == 0 {
		// An empty reservoir with a nonzero count (a merged sample-less
		// dump) still answers: max is the only sound interior bound.
		return h.max
	}
	return QuantileOf(h.samples, q)
}

// Snapshot is a consistent point-in-time view of a histogram: every
// field comes from one lock acquisition, so count, sum, and quantiles
// all describe the same moment (unlike calling Count/Sum/Quantile in
// sequence, which can interleave with writers).
type Snapshot struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration

	sorted []time.Duration
}

// Snapshot captures the histogram under a single lock acquisition. The
// reservoir copy is sorted after the lock is released, so writers are
// held up only for the copy.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	s := Snapshot{
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		sorted: append([]time.Duration(nil), h.samples...),
	}
	h.mu.Unlock()
	if s.Count > 0 {
		s.Mean = s.Sum / time.Duration(s.Count)
	}
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	return s
}

// Quantile reports the q-quantile of the snapshot. Min and max are
// exact; interior quantiles use nearest-rank over the reservoir.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	switch {
	case q <= 0:
		return s.Min
	case q >= 1, len(s.sorted) == 0:
		return s.Max
	}
	return quantileSorted(s.sorted, q)
}

// Samples returns a copy of the snapshot's (sorted) reservoir, the merge
// hook for callers that combine striped histograms.
func (s Snapshot) Samples() []time.Duration {
	return append([]time.Duration(nil), s.sorted...)
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() time.Duration { return h.Quantile(0) }

// QuantileOf reports the q-quantile of an unsorted sample set, or 0 when
// empty. It is the merge hook for callers that stripe samples across
// several histograms and want quantiles over the union.
func QuantileOf(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileSorted(sorted, q)
}

// quantileSorted picks the nearest-rank q-quantile of a sorted, non-empty
// sample set: the smallest value whose cumulative frequency reaches q.
// (The previous int(q*(n-1)) truncation biased every interior quantile
// low — e.g. the 0.95 quantile of 10 samples landed on rank 9 of 10.)
func quantileSorted(sorted []time.Duration, q float64) time.Duration {
	switch {
	case q <= 0:
		return sorted[0]
	case q >= 1:
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FmtDur renders a duration in milliseconds with a sensible precision for
// tables.
func FmtDur(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms == 0:
		return "0"
	case ms < 10:
		return fmt.Sprintf("%.2fms", ms)
	case ms < 100:
		return fmt.Sprintf("%.1fms", ms)
	default:
		return fmt.Sprintf("%.0fms", ms)
	}
}

// FmtRatio renders a unitless ratio.
func FmtRatio(r float64) string { return fmt.Sprintf("%.2f", r) }

// FmtPct renders a fraction as a percentage.
func FmtPct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// Table accumulates rows and renders them as an aligned ASCII table.
type Table struct {
	Title   string
	Headers []string

	mu   sync.Mutex
	rows [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := append([]string(nil), cells...)
	for len(row) < len(t.Headers) {
		row = append(row, "")
	}
	t.rows = append(t.rows, row)
}

// Rows returns a copy of the accumulated rows.
func (t *Table) Rows() [][]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()

	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(pad(h, widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	sb.Reset()
	for i := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	for _, row := range t.rows {
		sb.Reset()
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(cell, widths[i]))
			} else {
				sb.WriteString(cell)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// RenderCSV writes the table as CSV (header row first). Cells containing
// commas or quotes are quoted per RFC 4180.
func (t *Table) RenderCSV(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
