package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not all zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 49*time.Millisecond || p50 > 52*time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 98*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				h.Record(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if h.Count() != 4000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(64)
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	// Exact stats survive past the bound.
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 50005000*time.Microsecond {
		t.Fatalf("sum = %v", got)
	}
	if got := h.Mean(); got != 50005*time.Microsecond/10 {
		t.Fatalf("mean = %v", got)
	}
	if h.Min() != time.Microsecond || h.Max() != 10000*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	// Memory stays at the bound.
	if got := len(h.Samples()); got != 64 {
		t.Fatalf("reservoir holds %d samples, want 64", got)
	}
	// Reservoir quantiles are approximate but must land inside the
	// recorded range and be ordered.
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 < time.Microsecond || p99 > 10000*time.Microsecond || p50 > p99 {
		t.Fatalf("quantiles out of range: p50=%v p99=%v", p50, p99)
	}
	// With uniform input, the median estimate should be roughly central —
	// a loose band since the reservoir is only 64 wide.
	if p50 < 1000*time.Microsecond || p50 > 9000*time.Microsecond {
		t.Fatalf("p50 = %v, implausible for uniform 1..10000µs", p50)
	}
}

func TestHistogramDefaultBound(t *testing.T) {
	var h Histogram // zero value uses DefaultReservoir
	n := DefaultReservoir + 500
	for i := 0; i < n; i++ {
		h.Record(time.Millisecond)
	}
	if h.Count() != n {
		t.Fatalf("count = %d", h.Count())
	}
	if got := len(h.Samples()); got != DefaultReservoir {
		t.Fatalf("reservoir holds %d, want %d", got, DefaultReservoir)
	}
	if nh := NewHistogram(0); nh.bound() != DefaultReservoir {
		t.Fatalf("NewHistogram(0) bound = %d", nh.bound())
	}
}

func TestQuantileOf(t *testing.T) {
	if got := QuantileOf(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	samples := []time.Duration{30, 10, 20, 40, 50}
	if got := QuantileOf(samples, 0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := QuantileOf(samples, 0.5); got != 30 {
		t.Fatalf("q0.5 = %v", got)
	}
	if got := QuantileOf(samples, 1); got != 50 {
		t.Fatalf("q1 = %v", got)
	}
	// Input must not be reordered.
	if samples[0] != 30 {
		t.Fatalf("QuantileOf mutated its input: %v", samples)
	}
}

func TestFmtDur(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{0, "0"},
		{1500 * time.Microsecond, "1.50ms"},
		{42 * time.Millisecond, "42.0ms"},
		{1200 * time.Millisecond, "1200ms"},
	}
	for _, tt := range tests {
		if got := FmtDur(tt.d); got != tt.want {
			t.Errorf("FmtDur(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if got := FmtRatio(1.234); got != "1.23" {
		t.Fatalf("FmtRatio = %q", got)
	}
	if got := FmtPct(0.5); got != "50%" {
		t.Fatalf("FmtPct = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E0: demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.String()
	if !strings.Contains(out, "E0: demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name ") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator line = %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "alpha") {
		t.Fatalf("row line = %q", lines[3])
	}
	if rows := tb.Rows(); len(rows) != 2 || rows[1][1] != "" {
		t.Fatalf("Rows() = %v", rows)
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("longvalue", "x")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Column b must start at the same offset in header and row.
	hIdx := strings.Index(lines[0], "b")
	rIdx := strings.Index(lines[2], "x")
	if hIdx != rIdx {
		t.Fatalf("misaligned: header b at %d, row x at %d\n%s", hIdx, rIdx, out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "x,y")
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestQuantileOfNearestRank(t *testing.T) {
	// A known uniform distribution, 1ms..100ms, fed in descending order.
	// The nearest-rank q-quantile of n samples is the ceil(q*n)-th
	// smallest, so a probe just below each percentile boundary must land
	// exactly on that percentile's sample. The truncating int(q*(n-1))
	// index this replaced was biased low by up to a full rank.
	const n = 100
	samples := make([]time.Duration, 0, n)
	for i := n; i >= 1; i-- {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	for k := 1; k <= n; k++ {
		q := (float64(k) - 0.5) / n
		want := time.Duration(k) * time.Millisecond
		if got := QuantileOf(samples, q); got != want {
			t.Fatalf("QuantileOf(q=%.3f) = %v, want %v", q, got, want)
		}
	}
	// Spot checks at the quantiles the stats endpoints actually report.
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.5, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	} {
		if got := QuantileOf(samples, tc.q); got != tc.want {
			t.Fatalf("QuantileOf(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileOfSmallSampleBias(t *testing.T) {
	// The regression the nearest-rank fix targets: with two samples the
	// old truncating index mapped every interior quantile to the minimum.
	two := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if got := QuantileOf(two, 0.75); got != 20*time.Millisecond {
		t.Fatalf("QuantileOf(two, 0.75) = %v, want 20ms", got)
	}
	// And the case from the fix's comment: the 0.95 quantile of 10
	// samples is rank 10 of 10, not rank 9.
	ten := make([]time.Duration, 10)
	for i := range ten {
		ten[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := QuantileOf(ten, 0.95); got != 10*time.Millisecond {
		t.Fatalf("QuantileOf(ten, 0.95) = %v, want 10ms", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}

	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Sum != h.Sum() || s.Mean != h.Mean() || s.Min != h.Min() || s.Max != h.Max() {
		t.Fatalf("snapshot fields diverge from live accessors: %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("Snapshot.Quantile(%v) = %v, live = %v", q, got, want)
		}
	}

	// Writes after the snapshot must not bleed into it.
	h.Record(time.Hour)
	if s.Count != 100 || s.Max == time.Hour || s.Quantile(1) != 100*time.Millisecond {
		t.Fatalf("snapshot mutated by later Record: %+v", s)
	}

	// Samples hands back a defensive copy.
	cp := s.Samples()
	if len(cp) != 100 {
		t.Fatalf("Samples() len = %d, want 100", len(cp))
	}
	for i := range cp {
		cp[i] = 0
	}
	if s.Quantile(0.5) != 50*time.Millisecond {
		t.Fatal("mutating Samples() result changed the snapshot")
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	s := NewHistogram(4).Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.Quantile(0.5) != 0 || len(s.Samples()) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}
