package metrics

import (
	"math"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the nearest-rank quantile over a full (unbounded)
// sample set — the ground truth merged reservoirs are compared against.
func exactQuantile(all []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantileSorted(sorted, q)
}

// rankOf reports the fraction of `all` at or below v — the rank error
// metric: a perfect q-quantile estimate has rankOf ≈ q.
func rankOf(all []time.Duration, v time.Duration) float64 {
	n := 0
	for _, d := range all {
		if d <= v {
			n++
		}
	}
	return float64(n) / float64(len(all))
}

func TestMergeExactBelowBound(t *testing.T) {
	// When the union fits in the reservoir, the merge keeps every sample
	// and all quantiles are exact.
	a, b := NewHistogram(1024), NewHistogram(1024)
	var all []time.Duration
	for i := 1; i <= 300; i++ {
		d := time.Duration(i) * time.Millisecond
		a.Record(d)
		all = append(all, d)
	}
	for i := 301; i <= 500; i++ {
		d := time.Duration(i) * time.Millisecond
		b.Record(d)
		all = append(all, d)
	}
	a.Merge(b)
	if a.Count() != 500 {
		t.Fatalf("count = %d, want 500", a.Count())
	}
	if got, want := a.Sum(), exactSum(all); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if a.Min() != time.Millisecond || a.Max() != 500*time.Millisecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99} {
		if got, want := a.Quantile(q), exactQuantile(all, q); got != want {
			t.Fatalf("q%.2f = %v, want exact %v", q, got, want)
		}
	}
}

func exactSum(all []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range all {
		s += d
	}
	return s
}

func TestMergeAggregatesExact(t *testing.T) {
	// Count/sum/min/max stay exact through merges even when reservoirs
	// overflow and subsample.
	a, b := NewHistogram(32), NewHistogram(32)
	var all []time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		if i%3 == 0 {
			b.Record(d)
		} else {
			a.Record(d)
		}
		all = append(all, d)
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("count = %d", a.Count())
	}
	if a.Sum() != exactSum(all) {
		t.Fatalf("sum = %v, want %v", a.Sum(), exactSum(all))
	}
	if a.Min() != time.Microsecond || a.Max() != 1000*time.Microsecond {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if got := len(a.Samples()); got != 32 {
		t.Fatalf("merged reservoir holds %d, want the 32 bound", got)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	a, b := NewHistogram(64), NewHistogram(64)
	b.Record(5 * time.Millisecond)
	b.Record(7 * time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 || a.Min() != 5*time.Millisecond || a.Max() != 7*time.Millisecond {
		t.Fatalf("merge into empty: count=%d min=%v max=%v", a.Count(), a.Min(), a.Max())
	}
	// Merging an empty histogram is a no-op.
	before := a.Dump()
	a.Merge(NewHistogram(64))
	a.Merge(nil)
	if after := a.Dump(); after.Count != before.Count || len(after.Samples) != len(before.Samples) {
		t.Fatalf("merging empty mutated the histogram: %+v -> %+v", before, after)
	}
}

func TestMergeSamplelessDump(t *testing.T) {
	// A dump with a count but no samples (truncated serialization) merges
	// its aggregates and leaves quantiles answerable.
	h := NewHistogram(64)
	h.MergeDump(Dump{Count: 10, Sum: 100 * time.Millisecond, Min: 2 * time.Millisecond, Max: 40 * time.Millisecond})
	if h.Count() != 10 || h.Min() != 2*time.Millisecond || h.Max() != 40*time.Millisecond {
		t.Fatalf("aggregates: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
	// Interior quantiles with an empty reservoir fall back to max (the
	// only sound bound), not zero.
	if got := h.Quantile(0.5); got != 40*time.Millisecond {
		t.Fatalf("p50 of sample-less histogram = %v, want max 40ms", got)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.99); got != 40*time.Millisecond {
		t.Fatalf("snapshot p99 of sample-less histogram = %v, want max 40ms", got)
	}
}

// TestMergeQuantileRankError is the property test: merging two large
// overflowed reservoirs must produce quantile estimates whose rank error
// against the exact union distribution stays within the reservoir's
// sampling error. With a 4096-sample reservoir the standard error of a
// quantile's rank is about sqrt(q(1-q)/4096) ≈ 0.008 at the median; we
// allow 0.04 (5 sigma) so the test is deterministic-safe across rng
// paths yet still catches any weighting bug (an unweighted merge of
// 10:1-sized sides shifts the median's rank by ~0.2).
func TestMergeQuantileRankError(t *testing.T) {
	cases := []struct {
		name   string
		na, nb int
		genA   func(i int) time.Duration
		genB   func(i int) time.Duration
	}{
		{
			// Disjoint ranges, balanced sizes: any fair merge works.
			name: "balanced-disjoint",
			na:   20000, nb: 20000,
			genA: func(i int) time.Duration { return time.Duration(i) * time.Microsecond },
			genB: func(i int) time.Duration { return time.Duration(20000+i) * time.Microsecond },
		},
		{
			// 10:1 weight skew with disjoint ranges — the case that
			// exposes an unweighted reservoir concatenation.
			name: "skewed-disjoint",
			na:   50000, nb: 5000,
			genA: func(i int) time.Duration { return time.Duration(i) * time.Microsecond },
			genB: func(i int) time.Duration { return time.Duration(50000+i) * time.Microsecond },
		},
		{
			// Interleaved values, skewed sizes.
			name: "skewed-interleaved",
			na:   40000, nb: 4000,
			genA: func(i int) time.Duration { return time.Duration(2*i) * time.Microsecond },
			genB: func(i int) time.Duration { return time.Duration(2*(i%20000)+1) * time.Microsecond },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := NewHistogram(0), NewHistogram(0)
			var all []time.Duration
			for i := 0; i < tc.na; i++ {
				d := tc.genA(i)
				a.Record(d)
				all = append(all, d)
			}
			for i := 0; i < tc.nb; i++ {
				d := tc.genB(i)
				b.Record(d)
				all = append(all, d)
			}
			a.Merge(b)
			if a.Count() != tc.na+tc.nb {
				t.Fatalf("count = %d, want %d", a.Count(), tc.na+tc.nb)
			}
			if got := len(a.Samples()); got != DefaultReservoir {
				t.Fatalf("merged reservoir holds %d, want %d", got, DefaultReservoir)
			}
			const maxRankErr = 0.04
			for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
				est := a.Quantile(q)
				if err := math.Abs(rankOf(all, est) - q); err > maxRankErr {
					t.Errorf("q=%.2f: estimate %v has rank error %.3f (> %.2f); exact %v",
						q, est, err, maxRankErr, exactQuantile(all, q))
				}
			}
		})
	}
}

// TestMergeChainRankError merges many nodes' histograms into one, the
// /cluster scatter-gather shape, and checks the final quantiles.
func TestMergeChainRankError(t *testing.T) {
	merged := NewHistogram(0)
	var all []time.Duration
	for node := 0; node < 8; node++ {
		h := NewHistogram(0)
		n := 3000 + node*2000 // uneven per-node volumes
		for i := 0; i < n; i++ {
			// Per-node offset so each node has a distinct distribution.
			d := time.Duration(node*10000+i%10000) * time.Microsecond
			h.Record(d)
			all = append(all, d)
		}
		merged.MergeDump(h.Dump())
	}
	if merged.Count() != len(all) {
		t.Fatalf("count = %d, want %d", merged.Count(), len(all))
	}
	const maxRankErr = 0.05
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95, 0.99} {
		est := merged.Quantile(q)
		if err := math.Abs(rankOf(all, est) - q); err > maxRankErr {
			t.Errorf("q=%.2f: estimate %v has rank error %.3f (> %.2f)", q, est, err, maxRankErr)
		}
	}
}

func TestMergeDumpJSONRoundTrip(t *testing.T) {
	h := NewHistogram(16)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	d := h.Dump()
	if d.Count != 100 || len(d.Samples) != 16 {
		t.Fatalf("dump = count %d, %d samples", d.Count, len(d.Samples))
	}
	// The dump must be independent of the live histogram.
	d.Samples[0] = 0
	if got := h.Samples()[0]; got == 0 {
		t.Fatal("Dump aliases the live reservoir")
	}
}
