// Package locksvc is a lease-based distributed read/write lock service.
// The paper observes that the stricter points in the design space need it:
// "typical implementations would use locks to synchronize access to the set
// and its elements" (§3.1) — and also why it hurts: "the use of mobile (and
// possibly) disconnected computers may extend the period a lock is held
// indefinitely". Leases bound that damage: a holder that disappears loses
// the lock when its lease expires.
package locksvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

// Mode selects shared (read) or exclusive (write) acquisition.
type Mode int

// Lock modes.
const (
	Read Mode = iota + 1
	Write
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return "invalid"
	}
}

// ErrNotHeld reports a release of a lock the owner does not hold.
var ErrNotHeld = errors.New("locksvc: lock not held by owner")

// RPC method names.
const (
	MethodAcquire = "lock.Acquire"
	MethodRelease = "lock.Release"
)

// Wire types.
type (
	// AcquireReq attempts a non-blocking acquisition; clients poll.
	AcquireReq struct {
		Name  string
		Mode  Mode
		Owner string
		// TTL is the lease duration in virtual time.
		TTL time.Duration
	}
	// AcquireResp reports whether the lease was granted.
	AcquireResp struct{ Granted bool }
	// ReleaseReq releases a held lease.
	ReleaseReq struct {
		Name  string
		Owner string
	}
)

type lease struct {
	mode   Mode
	expiry time.Time // wall-clock deadline (already scaled)
}

type lockState struct {
	holders map[string]lease
}

// Server is the lock manager running on one node.
type Server struct {
	node  netsim.NodeID
	scale func(time.Duration) time.Duration // virtual TTL -> real duration
	now   func() time.Time

	mu    sync.Mutex
	locks map[string]*lockState
}

// NewServer creates and registers a lock server on node.
func NewServer(bus *rpc.Bus, node netsim.NodeID) (*Server, error) {
	scale := bus.Network().Scale()
	s := &Server{
		node:  node,
		scale: scale.Real,
		now:   time.Now,
		locks: make(map[string]*lockState),
	}
	srv := rpc.NewServer(node)
	srv.Handle(MethodAcquire, s.handleAcquire)
	srv.Handle(MethodRelease, s.handleRelease)
	if err := bus.Register(srv); err != nil {
		return nil, fmt.Errorf("lock server %s: %w", node, err)
	}
	return s, nil
}

// Node reports the node the server runs on.
func (s *Server) Node() netsim.NodeID { return s.node }

func (s *Server) state(name string) *lockState {
	st, ok := s.locks[name]
	if !ok {
		st = &lockState{holders: make(map[string]lease)}
		s.locks[name] = st
	}
	return st
}

func (s *Server) expireLocked(st *lockState) {
	now := s.now()
	for owner, l := range st.holders {
		if !l.expiry.IsZero() && now.After(l.expiry) {
			delete(st.holders, owner)
		}
	}
}

func (s *Server) handleAcquire(_ context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(AcquireReq)
	if !ok {
		return nil, fmt.Errorf("locksvc: bad request type %T", req)
	}
	if r.Mode != Read && r.Mode != Write {
		return nil, fmt.Errorf("locksvc: invalid mode %d", r.Mode)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(r.Name)
	s.expireLocked(st)

	var expiry time.Time
	if r.TTL > 0 {
		real := s.scale(r.TTL)
		if real <= 0 {
			// With a zero time scale the lease would expire instantly;
			// give it a small real floor so logical tests behave.
			real = 50 * time.Millisecond
		}
		expiry = s.now().Add(real)
	}

	// Re-entrant upgrade-free semantics: an owner re-acquiring in the same
	// mode refreshes its lease.
	if held, exists := st.holders[r.Owner]; exists && held.mode == r.Mode {
		st.holders[r.Owner] = lease{mode: r.Mode, expiry: expiry}
		return AcquireResp{Granted: true}, nil
	}

	switch r.Mode {
	case Write:
		if len(st.holders) > 0 {
			if _, selfOnly := st.holders[r.Owner]; !(selfOnly && len(st.holders) == 1) {
				return AcquireResp{Granted: false}, nil
			}
		}
	case Read:
		for owner, l := range st.holders {
			if l.mode == Write && owner != r.Owner {
				return AcquireResp{Granted: false}, nil
			}
		}
	}
	st.holders[r.Owner] = lease{mode: r.Mode, expiry: expiry}
	return AcquireResp{Granted: true}, nil
}

func (s *Server) handleRelease(_ context.Context, _ netsim.NodeID, req any) (any, error) {
	r, ok := req.(ReleaseReq)
	if !ok {
		return nil, fmt.Errorf("locksvc: bad request type %T", req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(r.Name)
	s.expireLocked(st)
	if _, held := st.holders[r.Owner]; !held {
		return nil, fmt.Errorf("release %q by %q: %w", r.Name, r.Owner, ErrNotHeld)
	}
	delete(st.holders, r.Owner)
	return struct{}{}, nil
}

// Holders reports the current number of unexpired holders (test hook).
func (s *Server) Holders(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.state(name)
	s.expireLocked(st)
	return len(st.holders)
}

// Client acquires and releases locks from a home node.
type Client struct {
	bus   *rpc.Bus
	node  netsim.NodeID
	owner string
	// RetryEvery is the virtual backoff between acquisition attempts.
	RetryEvery time.Duration
}

// NewClient creates a lock client; owner must be unique per logical holder.
func NewClient(bus *rpc.Bus, node netsim.NodeID, owner string) *Client {
	return &Client{
		bus:        bus,
		node:       node,
		owner:      owner,
		RetryEvery: 10 * time.Millisecond,
	}
}

// TryAcquire makes a single acquisition attempt.
func (c *Client) TryAcquire(ctx context.Context, server netsim.NodeID, name string, mode Mode, ttl time.Duration) (bool, error) {
	resp, err := rpc.Invoke[AcquireResp](ctx, c.bus, c.node, server, MethodAcquire, AcquireReq{
		Name:  name,
		Mode:  mode,
		Owner: c.owner,
		TTL:   ttl,
	})
	if err != nil {
		return false, err
	}
	return resp.Granted, nil
}

// Acquire polls until the lock is granted, the context is cancelled, or an
// RPC failure occurs. It returns the virtual time spent waiting — the "lock
// wait" cost the paper warns about.
func (c *Client) Acquire(ctx context.Context, server netsim.NodeID, name string, mode Mode, ttl time.Duration) (time.Duration, error) {
	scale := c.bus.Network().Scale()
	elapsed := scale.Stopwatch()
	for {
		granted, err := c.TryAcquire(ctx, server, name, mode, ttl)
		if err != nil {
			return elapsed(), err
		}
		if granted {
			return elapsed(), nil
		}
		if !scale.SleepCtxFloor(ctx, c.RetryEvery, 100*time.Microsecond) {
			return elapsed(), ctx.Err()
		}
	}
}

// Release releases the lock.
func (c *Client) Release(ctx context.Context, server netsim.NodeID, name string) error {
	_, _, err := c.bus.Call(ctx, c.node, server, MethodRelease, ReleaseReq{Name: name, Owner: c.owner})
	return err
}
