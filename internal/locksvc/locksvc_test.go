package locksvc

import (
	"context"
	"errors"
	"testing"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/rpc"
)

func newLockWorld(t *testing.T) (*Bus, *Server) {
	t.Helper()
	n := netsim.New(netsim.Config{})
	n.AddNode("c1")
	n.AddNode("c2")
	n.AddNode("locks")
	b := rpc.NewBus(n)
	srv, err := NewServer(b, "locks")
	if err != nil {
		t.Fatal(err)
	}
	return &Bus{b}, srv
}

// Bus wraps rpc.Bus to keep test helper signatures short.
type Bus struct{ *rpc.Bus }

func (b *Bus) client(node netsim.NodeID, owner string) *Client {
	return NewClient(b.Bus, node, owner)
}

func TestReadersShare(t *testing.T) {
	b, srv := newLockWorld(t)
	ctx := context.Background()
	r1, r2 := b.client("c1", "r1"), b.client("c2", "r2")
	for _, c := range []*Client{r1, r2} {
		granted, err := c.TryAcquire(ctx, "locks", "L", Read, 0)
		if err != nil || !granted {
			t.Fatalf("read acquire: granted=%v err=%v", granted, err)
		}
	}
	if srv.Holders("L") != 2 {
		t.Fatalf("holders = %d, want 2", srv.Holders("L"))
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	b, _ := newLockWorld(t)
	ctx := context.Background()
	w, r := b.client("c1", "w"), b.client("c2", "r")
	if granted, err := w.TryAcquire(ctx, "locks", "L", Write, 0); err != nil || !granted {
		t.Fatalf("write acquire: %v %v", granted, err)
	}
	if granted, _ := r.TryAcquire(ctx, "locks", "L", Read, 0); granted {
		t.Fatal("reader granted while writer holds")
	}
	if err := w.Release(ctx, "locks", "L"); err != nil {
		t.Fatal(err)
	}
	if granted, _ := r.TryAcquire(ctx, "locks", "L", Read, 0); !granted {
		t.Fatal("reader denied after writer released")
	}
}

func TestReadersExcludeWriter(t *testing.T) {
	b, _ := newLockWorld(t)
	ctx := context.Background()
	r, w := b.client("c1", "r"), b.client("c2", "w")
	if granted, _ := r.TryAcquire(ctx, "locks", "L", Read, 0); !granted {
		t.Fatal("read denied")
	}
	if granted, _ := w.TryAcquire(ctx, "locks", "L", Write, 0); granted {
		t.Fatal("writer granted while reader holds")
	}
}

func TestReacquireRefreshesSameMode(t *testing.T) {
	b, srv := newLockWorld(t)
	ctx := context.Background()
	c := b.client("c1", "x")
	for i := 0; i < 3; i++ {
		if granted, err := c.TryAcquire(ctx, "locks", "L", Write, 0); err != nil || !granted {
			t.Fatalf("reacquire %d: %v %v", i, granted, err)
		}
	}
	if srv.Holders("L") != 1 {
		t.Fatalf("holders = %d, want 1", srv.Holders("L"))
	}
}

func TestWriterSelfUpgradeFromSoleRead(t *testing.T) {
	b, _ := newLockWorld(t)
	ctx := context.Background()
	c := b.client("c1", "x")
	if granted, _ := c.TryAcquire(ctx, "locks", "L", Read, 0); !granted {
		t.Fatal("read denied")
	}
	if granted, _ := c.TryAcquire(ctx, "locks", "L", Write, 0); !granted {
		t.Fatal("sole reader could not upgrade")
	}
}

func TestReleaseNotHeld(t *testing.T) {
	b, _ := newLockWorld(t)
	err := b.client("c1", "x").Release(context.Background(), "locks", "L")
	if !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	b, srv := newLockWorld(t)
	ctx := context.Background()
	// Zero time scale: the server floors real leases at 50ms.
	c := b.client("c1", "holder")
	if granted, _ := c.TryAcquire(ctx, "locks", "L", Write, time.Millisecond); !granted {
		t.Fatal("acquire denied")
	}
	w := b.client("c2", "waiter")
	if granted, _ := w.TryAcquire(ctx, "locks", "L", Write, 0); granted {
		t.Fatal("granted while lease alive")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if granted, _ := w.TryAcquire(ctx, "locks", "L", Write, 0); granted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Holders("L") != 1 {
		t.Fatalf("holders = %d, want 1 (the waiter)", srv.Holders("L"))
	}
}

func TestAcquireBlocksUntilReleased(t *testing.T) {
	b, _ := newLockWorld(t)
	ctx := context.Background()
	h := b.client("c1", "h")
	if granted, _ := h.TryAcquire(ctx, "locks", "L", Write, 0); !granted {
		t.Fatal("holder denied")
	}
	w := b.client("c2", "w")
	w.RetryEvery = time.Millisecond
	done := make(chan error, 1)
	go func() {
		_, err := w.Acquire(ctx, "locks", "L", Write, 0)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("Acquire returned while lock held")
	case <-time.After(20 * time.Millisecond):
	}
	if err := h.Release(ctx, "locks", "L"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire never completed after release")
	}
}

func TestAcquireCancelled(t *testing.T) {
	b, _ := newLockWorld(t)
	ctx := context.Background()
	h := b.client("c1", "h")
	if granted, _ := h.TryAcquire(ctx, "locks", "L", Write, 0); !granted {
		t.Fatal("holder denied")
	}
	w := b.client("c2", "w")
	w.RetryEvery = time.Millisecond
	cctx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := w.Acquire(cctx, "locks", "L", Write, 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Acquire ignored cancellation")
	}
}

func TestAcquireAcrossPartitionFails(t *testing.T) {
	b, _ := newLockWorld(t)
	b.Network().Isolate("locks")
	_, err := b.client("c1", "x").Acquire(context.Background(), "locks", "L", Read, 0)
	if !netsim.IsFailure(err) {
		t.Fatalf("err = %v, want transport failure", err)
	}
}

func TestInvalidMode(t *testing.T) {
	b, _ := newLockWorld(t)
	_, err := b.client("c1", "x").TryAcquire(context.Background(), "locks", "L", Mode(99), 0)
	if err == nil {
		t.Fatal("invalid mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Mode(0).String() != "invalid" {
		t.Fatal("Mode.String wrong")
	}
}
