package workload

import (
	"context"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

func newCluster(t *testing.T, scale sim.TimeScale) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 3, Seed: 5, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Client.CreateCollection(context.Background(), cluster.DirNode, "w"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMutatorAddsAndRemoves(t *testing.T) {
	c := newCluster(t, 0.0001) // 10ms virtual -> 1µs real
	m := NewMutator(MutatorConfig{
		Client:      c.Client,
		Dir:         cluster.DirNode,
		Coll:        "w",
		AddEvery:    5 * time.Millisecond,
		RemoveEvery: 20 * time.Millisecond,
		ObjectNodes: c.Storage,
		ObjectSize:  32,
		IDPrefix:    "t",
		Rand:        sim.NewRand(1),
	})
	m.Start(context.Background())
	time.Sleep(30 * time.Millisecond) // plenty of virtual time
	m.Stop()

	added, removed := m.Added(), m.Removed()
	if len(added) == 0 {
		t.Fatal("no additions")
	}
	if len(removed) == 0 {
		t.Fatal("no removals")
	}
	if len(removed) >= len(added) {
		t.Fatalf("removed %d >= added %d despite 4x slower removal", len(removed), len(added))
	}
	// Events are timestamped monotonically.
	for i := 1; i < len(added); i++ {
		if added[i].At < added[i-1].At {
			t.Fatal("addition timestamps not monotone")
		}
	}
	// Live membership equals additions minus removals.
	members, _, err := c.Client.List(context.Background(), cluster.DirNode, "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != len(added)-len(removed) {
		t.Fatalf("members = %d, added-removed = %d", len(members), len(added)-len(removed))
	}
}

func TestMutatorAddOnly(t *testing.T) {
	c := newCluster(t, 0.0001)
	m := NewMutator(MutatorConfig{
		Client:      c.Client,
		Dir:         cluster.DirNode,
		Coll:        "w",
		AddEvery:    2 * time.Millisecond,
		ObjectNodes: c.Storage,
		IDPrefix:    "g",
		Rand:        sim.NewRand(2),
	})
	m.Start(context.Background())
	time.Sleep(20 * time.Millisecond)
	m.Stop()
	if len(m.Added()) == 0 {
		t.Fatal("no additions")
	}
	if len(m.Removed()) != 0 {
		t.Fatal("removals despite RemoveEvery=0")
	}
}

func TestMutatorNoOpsConfigured(t *testing.T) {
	c := newCluster(t, 0)
	m := NewMutator(MutatorConfig{
		Client:      c.Client,
		Dir:         cluster.DirNode,
		Coll:        "w",
		ObjectNodes: c.Storage,
		Rand:        sim.NewRand(3),
	})
	m.Start(context.Background())
	m.Stop() // must return promptly: nothing to do
}

func TestMutatorRemovesFromInitialPool(t *testing.T) {
	c := newCluster(t, 0.0001)
	ctx := context.Background()
	ref, err := c.Client.Put(ctx, c.Storage[0], repo.Object{ID: "seed", Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Client.Add(ctx, cluster.DirNode, "w", ref); err != nil {
		t.Fatal(err)
	}
	m := NewMutator(MutatorConfig{
		Client:      c.Client,
		Dir:         cluster.DirNode,
		Coll:        "w",
		RemoveEvery: time.Millisecond,
		ObjectNodes: c.Storage,
		Initial:     []repo.Ref{ref},
		Rand:        sim.NewRand(4),
	})
	m.Start(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(m.Removed()) > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	if len(m.Removed()) != 1 {
		t.Fatalf("removed = %d, want 1", len(m.Removed()))
	}
	members, _, err := c.Client.List(ctx, cluster.DirNode, "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 0 {
		t.Fatalf("members = %v", members)
	}
}

func TestFlakyInjectsAndHeals(t *testing.T) {
	c := newCluster(t, 0.0001)
	f := NewFlaky(FlakyConfig{
		Net:       c.Net,
		Victims:   c.Storage,
		Every:     time.Millisecond,
		OutageFor: 2 * time.Millisecond,
		POutage:   1.0,
		Rand:      sim.NewRand(5),
	})
	f.Start(context.Background())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && f.Outages() < 3 {
		time.Sleep(time.Millisecond)
	}
	f.Stop()
	if f.Outages() < 3 {
		t.Fatalf("outages = %d, want >= 3", f.Outages())
	}
	// Stop heals everything.
	for _, v := range c.Storage {
		if !c.Net.Reachable(cluster.HomeNode, v) {
			t.Fatalf("node %s still isolated after Stop", v)
		}
	}
}

func TestFlakyZeroProbabilityNeverInjects(t *testing.T) {
	c := newCluster(t, 0.0001)
	f := NewFlaky(FlakyConfig{
		Net:       c.Net,
		Victims:   c.Storage,
		Every:     time.Millisecond,
		OutageFor: time.Millisecond,
		POutage:   0,
		Rand:      sim.NewRand(6),
	})
	f.Start(context.Background())
	time.Sleep(10 * time.Millisecond)
	f.Stop()
	if f.Outages() != 0 {
		t.Fatalf("outages = %d, want 0", f.Outages())
	}
}
