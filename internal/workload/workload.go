// Package workload generates the concurrent activity the paper's design
// space is about: writers mutating a collection while readers iterate
// ("user A may be updating the information repository concurrently with
// user B who is reading from it", §1), and failure schedules that isolate
// and heal nodes ("disconnecting a mobile client from the network while
// traveling is an induced failure", §1.1).
package workload

import (
	"context"
	"fmt"
	"sync"
	"time"

	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// Event is one recorded mutation, stamped with virtual time since the
// mutator started.
type Event struct {
	Ref repo.Ref
	At  time.Duration
}

// MutatorConfig configures a background writer.
type MutatorConfig struct {
	Client *repo.Client
	Dir    netsim.NodeID
	Coll   string
	// AddEvery is the virtual period between additions; zero disables
	// additions.
	AddEvery time.Duration
	// RemoveEvery is the virtual period between removals; zero disables
	// removals.
	RemoveEvery time.Duration
	// ObjectNodes are the nodes new objects are placed on, round-robin.
	ObjectNodes []netsim.NodeID
	// ObjectSize is the payload size of created objects.
	ObjectSize int
	// IDPrefix namespaces the IDs this mutator mints.
	IDPrefix string
	// Initial seeds the removable pool with pre-existing members.
	Initial []repo.Ref
	// Rand drives placement and victim selection. Required.
	Rand *sim.Rand
}

// Mutator is a background writer with a bounded lifetime: Start launches
// it, Stop signals it and waits for it to exit.
type Mutator struct {
	cfg    MutatorConfig
	scale  sim.TimeScale
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	pool    []repo.Ref
	added   []Event
	removed []Event
	seq     int
	start   time.Time
}

// NewMutator builds a mutator; call Start to run it.
func NewMutator(cfg MutatorConfig) *Mutator {
	return &Mutator{
		cfg:   cfg,
		scale: cfg.Client.Bus().Network().Scale(),
		pool:  append([]repo.Ref(nil), cfg.Initial...),
		done:  make(chan struct{}),
	}
}

// Start launches the mutation loop.
func (m *Mutator) Start(ctx context.Context) {
	ictx, cancel := context.WithCancel(ctx)
	m.cancel = cancel
	m.start = time.Now()
	go m.run(ictx)
}

// Stop halts the mutator and waits for it to exit.
func (m *Mutator) Stop() {
	if m.cancel != nil {
		m.cancel()
	}
	<-m.done
}

func (m *Mutator) run(ctx context.Context) {
	defer close(m.done)
	if m.cfg.AddEvery <= 0 && m.cfg.RemoveEvery <= 0 {
		return
	}
	// Schedule against absolute virtual time so the mutator's own RPC
	// latency does not stretch its period (a slow op makes the next one
	// fire immediately rather than drifting the schedule).
	elapsed := m.scale.Stopwatch()
	var nextAdd, nextRemove time.Duration
	if m.cfg.AddEvery > 0 {
		nextAdd = m.cfg.AddEvery
	}
	if m.cfg.RemoveEvery > 0 {
		nextRemove = m.cfg.RemoveEvery
	}
	for {
		var (
			at    time.Duration
			isAdd bool
		)
		switch {
		case nextAdd > 0 && (nextRemove == 0 || nextAdd <= nextRemove):
			at, isAdd = nextAdd, true
		case nextRemove > 0:
			at = nextRemove
		default:
			return
		}
		if wait := at - elapsed(); wait > 0 {
			if !sleepCtx(ctx, m.scale, wait) {
				return
			}
		} else if ctx.Err() != nil {
			return
		}
		// Mutations run under a fresh context so a Stop between RPCs cannot
		// leave a half-applied, unrecorded mutation behind.
		if isAdd {
			m.addOne(context.Background(), at)
			nextAdd = at + m.cfg.AddEvery
		} else {
			m.removeOne(context.Background(), at)
			nextRemove = at + m.cfg.RemoveEvery
		}
	}
}

func (m *Mutator) addOne(ctx context.Context, at time.Duration) {
	m.mu.Lock()
	m.seq++
	id := repo.ObjectID(fmt.Sprintf("%s-m%04d", m.cfg.IDPrefix, m.seq))
	m.mu.Unlock()

	node := m.cfg.ObjectNodes[m.cfg.Rand.Intn(len(m.cfg.ObjectNodes))]
	obj := repo.Object{ID: id, Data: make([]byte, m.cfg.ObjectSize)}
	ref, err := m.cfg.Client.Put(ctx, node, obj)
	if err != nil {
		return
	}
	if err := m.cfg.Client.Add(ctx, m.cfg.Dir, m.cfg.Coll, ref); err != nil {
		return
	}
	m.mu.Lock()
	m.pool = append(m.pool, ref)
	m.added = append(m.added, Event{Ref: ref, At: at})
	m.mu.Unlock()
}

func (m *Mutator) removeOne(ctx context.Context, at time.Duration) {
	m.mu.Lock()
	if len(m.pool) == 0 {
		m.mu.Unlock()
		return
	}
	i := m.cfg.Rand.Intn(len(m.pool))
	victim := m.pool[i]
	m.pool = append(m.pool[:i], m.pool[i+1:]...)
	m.mu.Unlock()

	if err := m.cfg.Client.DeleteMember(ctx, m.cfg.Dir, m.cfg.Coll, victim); err != nil {
		return
	}
	m.mu.Lock()
	m.removed = append(m.removed, Event{Ref: victim, At: at})
	m.mu.Unlock()
}

// Added returns the successful additions so far.
func (m *Mutator) Added() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.added...)
}

// Removed returns the successful removals so far.
func (m *Mutator) Removed() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.removed...)
}

// FlakyConfig configures a failure injector.
type FlakyConfig struct {
	Net *netsim.Network
	// Victims are the nodes eligible for isolation.
	Victims []netsim.NodeID
	// Every is the virtual period between outage decisions.
	Every time.Duration
	// OutageFor is how long an isolated node stays isolated.
	OutageFor time.Duration
	// POutage is the probability an outage starts at each decision point.
	POutage float64
	// Rand drives victim selection. Required.
	Rand *sim.Rand
}

// Flaky periodically isolates random victim nodes and heals them after a
// fixed outage, modelling transient disconnection.
type Flaky struct {
	cfg    FlakyConfig
	scale  sim.TimeScale
	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	outages int
}

// NewFlaky builds a failure injector; call Start to run it.
func NewFlaky(cfg FlakyConfig) *Flaky {
	return &Flaky{cfg: cfg, scale: cfg.Net.Scale(), done: make(chan struct{})}
}

// Start launches the injection loop.
func (f *Flaky) Start(ctx context.Context) {
	ictx, cancel := context.WithCancel(ctx)
	f.cancel = cancel
	go f.run(ictx)
}

// Stop halts injection, heals all victims, and waits for exit.
func (f *Flaky) Stop() {
	if f.cancel != nil {
		f.cancel()
	}
	<-f.done
	for _, v := range f.cfg.Victims {
		f.cfg.Net.Rejoin(v)
	}
}

// Outages reports how many outages were injected.
func (f *Flaky) Outages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.outages
}

func (f *Flaky) run(ctx context.Context) {
	defer close(f.done)
	for {
		if !sleepCtx(ctx, f.scale, f.cfg.Every) {
			return
		}
		if f.cfg.Rand.Float64() >= f.cfg.POutage {
			continue
		}
		victim := f.cfg.Victims[f.cfg.Rand.Intn(len(f.cfg.Victims))]
		f.cfg.Net.Isolate(victim)
		f.mu.Lock()
		f.outages++
		f.mu.Unlock()
		if !sleepCtx(ctx, f.scale, f.cfg.OutageFor) {
			f.cfg.Net.Rejoin(victim)
			return
		}
		f.cfg.Net.Rejoin(victim)
	}
}

// sleepCtx sleeps a scaled virtual duration, returning false if the
// context ended first.
func sleepCtx(ctx context.Context, scale sim.TimeScale, virtual time.Duration) bool {
	return scale.SleepCtxFloor(ctx, virtual, 50*time.Microsecond)
}
