// Package dynapi is the Unix-flavoured programmer's interface to dynamic
// sets, modelled on the API the paper's co-author was adding to Unix
// (§1.1: "one of us (DCS) as part of a Ph.D. thesis is adding a set
// abstraction called dynamic sets to the Unix Application Programmer's
// Interface"): descriptor-based setOpen / setIterate / setDigest /
// setClose calls over distributed file-system paths with glob patterns.
//
//	api := dynapi.New(client)
//	api.Mount("/pub", dirNode)
//	sd, _ := api.SetOpen(ctx, "/pub/*.ps", core.DynOptions{Width: 8})
//	for {
//	    entry, ok, err := api.SetIterate(ctx, sd)
//	    if err != nil || !ok { break }
//	    render(entry)
//	}
//	api.SetClose(sd)
//
// SetOpen returns immediately after the membership read; contents stream
// in behind the descriptor in parallel, closest first — so the first
// SetIterate typically completes after a single near-server round trip.
package dynapi

import (
	"context"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"weaksets/internal/core"
	"weaksets/internal/fsim"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
)

// SD is a set descriptor, the handle SetOpen returns.
type SD int

// Errors reported by the API.
var (
	// ErrBadDescriptor reports use of a closed or never-opened descriptor.
	ErrBadDescriptor = errors.New("dynapi: bad set descriptor")
	// ErrNotMounted reports a path whose directory has no mounted node.
	ErrNotMounted = errors.New("dynapi: directory not mounted")
	// ErrBadPattern reports an invalid glob pattern.
	ErrBadPattern = errors.New("dynapi: bad pattern")
)

// API is a per-client dynamic-sets session table. It is safe for
// concurrent use; each descriptor's iterate calls are serialized by the
// caller as usual for iterators.
type API struct {
	client *repo.Client
	fs     *fsim.FS

	mu     sync.Mutex
	mounts map[string]netsim.NodeID
	next   SD
	open   map[SD]*session
}

type session struct {
	ds      *core.DynSet
	pattern string
	base    string // glob applied to entry names
}

// New creates an API bound to a repository client.
func New(client *repo.Client) *API {
	return &API{
		client: client,
		fs:     fsim.New(client),
		mounts: make(map[string]netsim.NodeID),
		open:   make(map[SD]*session),
	}
}

// FS exposes the underlying file-system view (for building trees in tests
// and examples).
func (a *API) FS() *fsim.FS { return a.fs }

// Mount records which node holds the collection for directory dir.
// Resolution picks the longest mounted prefix.
func (a *API) Mount(dir string, node netsim.NodeID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mounts[path.Clean(dir)] = node
}

// resolve finds the mounted node for a directory via longest-prefix match.
func (a *API) resolve(dir string) (netsim.NodeID, error) {
	dir = path.Clean(dir)
	a.mu.Lock()
	defer a.mu.Unlock()
	for p := dir; ; p = path.Dir(p) {
		if node, ok := a.mounts[p]; ok {
			return node, nil
		}
		if p == "/" || p == "." {
			return "", fmt.Errorf("%w: %s", ErrNotMounted, dir)
		}
	}
}

// SetOpen opens a dynamic set over every entry of the pattern's directory
// whose name matches the pattern's base glob (path.Match syntax: `*`, `?`,
// character classes). The directory part must be literal.
func (a *API) SetOpen(ctx context.Context, pattern string, opts core.DynOptions) (SD, error) {
	dir, base := path.Split(path.Clean(pattern))
	if dir == "" {
		dir = "/"
	}
	if strings.ContainsAny(dir, `*?[`) {
		return 0, fmt.Errorf("%w: glob in directory part of %q", ErrBadPattern, pattern)
	}
	if _, err := path.Match(base, "probe"); err != nil {
		return 0, fmt.Errorf("%w: %q: %v", ErrBadPattern, pattern, err)
	}
	node, err := a.resolve(dir)
	if err != nil {
		return 0, err
	}
	ds, err := a.fs.LsDyn(ctx, node, dir, opts)
	if err != nil {
		return 0, err
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	a.next++
	sd := a.next
	a.open[sd] = &session{ds: ds, pattern: pattern, base: base}
	return sd, nil
}

func (a *API) session(sd SD) (*session, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.open[sd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadDescriptor, int(sd))
	}
	return s, nil
}

// SetIterate yields the next matching entry in completion order. ok=false
// with a nil error means the set is exhausted.
func (a *API) SetIterate(ctx context.Context, sd SD) (entry fsim.Entry, ok bool, err error) {
	s, err := a.session(sd)
	if err != nil {
		return fsim.Entry{}, false, err
	}
	for s.ds.Next(ctx) {
		e := fsim.EntryFromElement(s.ds.Element())
		matched, _ := path.Match(s.base, e.Name)
		if matched {
			return e, true, nil
		}
	}
	return fsim.Entry{}, false, s.ds.Err()
}

// SetDigest returns the matching member *names* without fetching any
// contents — the cheap existence probe of the dynamic-sets API. It reads
// the directory membership once.
func (a *API) SetDigest(ctx context.Context, sd SD) ([]string, error) {
	s, err := a.session(sd)
	if err != nil {
		return nil, err
	}
	dir, _ := path.Split(path.Clean(s.pattern))
	if dir == "" {
		dir = "/"
	}
	node, err := a.resolve(dir)
	if err != nil {
		return nil, err
	}
	entries, err := a.fs.Names(ctx, node, dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range entries {
		if matched, _ := path.Match(s.base, name); matched {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Skipped reports the unreachable entries the descriptor's prefetcher gave
// up on (skip mode only).
func (a *API) Skipped(sd SD) ([]repo.Ref, error) {
	s, err := a.session(sd)
	if err != nil {
		return nil, err
	}
	return s.ds.Skipped(), nil
}

// SetClose releases the descriptor and stops its prefetching.
func (a *API) SetClose(sd SD) error {
	a.mu.Lock()
	s, ok := a.open[sd]
	delete(a.open, sd)
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadDescriptor, int(sd))
	}
	return s.ds.Close()
}

// OpenCount reports the number of live descriptors (leak checks).
func (a *API) OpenCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.open)
}

// CloseAll closes every open descriptor.
func (a *API) CloseAll() {
	a.mu.Lock()
	sessions := make([]*session, 0, len(a.open))
	for _, s := range a.open {
		sessions = append(sessions, s)
	}
	a.open = make(map[SD]*session)
	a.mu.Unlock()
	for _, s := range sessions {
		_ = s.ds.Close()
	}
}
