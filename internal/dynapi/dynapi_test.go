package dynapi

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/fsim"
)

type apiWorld struct {
	c   *cluster.Cluster
	api *API
}

func newAPIWorld(t *testing.T) *apiWorld {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	api := New(c.Client)
	api.Mount("/", cluster.DirNode)
	t.Cleanup(api.CloseAll)

	ctx := context.Background()
	fs := api.FS()
	if err := fs.Mkdir(ctx, "", cluster.DirNode, "/"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, cluster.DirNode, cluster.DirNode, "/pub"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("/pub/paper%02d.ps", i)
		if i%2 == 1 {
			name = fmt.Sprintf("/pub/note%02d.txt", i)
		}
		if _, err := fs.WriteFile(ctx, cluster.DirNode, c.StorageFor(i), name, []byte("body")); err != nil {
			t.Fatal(err)
		}
	}
	return &apiWorld{c: c, api: api}
}

func drain(t *testing.T, api *API, sd SD) []fsim.Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var out []fsim.Entry
	for {
		entry, ok, err := api.SetIterate(ctx, sd)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, entry)
	}
}

func TestSetOpenIterateClose(t *testing.T) {
	w := newAPIWorld(t)
	sd, err := w.api.SetOpen(context.Background(), "/pub/*.ps", core.DynOptions{Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	entries := drain(t, w.api, sd)
	if len(entries) != 3 {
		t.Fatalf("matched %d, want 3 .ps files", len(entries))
	}
	for _, e := range entries {
		if e.Type != fsim.TypeFile || len(e.Data) == 0 {
			t.Fatalf("entry %+v", e)
		}
	}
	if err := w.api.SetClose(sd); err != nil {
		t.Fatal(err)
	}
	if w.api.OpenCount() != 0 {
		t.Fatalf("descriptors leaked: %d", w.api.OpenCount())
	}
}

func TestSetOpenMatchAll(t *testing.T) {
	w := newAPIWorld(t)
	sd, err := w.api.SetOpen(context.Background(), "/pub/*", core.DynOptions{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.api.SetClose(sd) }()
	if got := drain(t, w.api, sd); len(got) != 6 {
		t.Fatalf("matched %d, want 6", len(got))
	}
}

func TestSetOpenQuestionMarkAndClass(t *testing.T) {
	w := newAPIWorld(t)
	sd, err := w.api.SetOpen(context.Background(), "/pub/note0[13].txt", core.DynOptions{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.api.SetClose(sd) }()
	if got := drain(t, w.api, sd); len(got) != 2 {
		t.Fatalf("matched %d, want 2", len(got))
	}
}

func TestSetDigestIsMetadataOnly(t *testing.T) {
	w := newAPIWorld(t)
	ctx := context.Background()
	sd, err := w.api.SetOpen(ctx, "/pub/*.ps", core.DynOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.api.SetClose(sd) }()
	names, err := w.api.SetDigest(ctx, sd)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"paper00.ps", "paper02.ps", "paper04.ps"}
	if len(names) != len(want) {
		t.Fatalf("digest = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("digest = %v, want %v", names, want)
		}
	}
	// A digest works even when every storage node is cut off: it only
	// touches the directory.
	for _, node := range w.c.Storage {
		w.c.Net.Isolate(node)
	}
	names2, err := w.api.SetDigest(ctx, sd)
	if err != nil {
		t.Fatalf("digest under partition: %v", err)
	}
	if len(names2) != 3 {
		t.Fatalf("digest under partition = %v", names2)
	}
}

func TestSetIterateSkipsUnreachable(t *testing.T) {
	w := newAPIWorld(t)
	// Entries live round-robin on storage nodes 0..3: paper00 and paper04
	// sit on s0, paper02 on s2. Cutting s0 leaves one reachable .ps.
	w.c.Net.Isolate(w.c.Storage[0])
	sd, err := w.api.SetOpen(context.Background(), "/pub/*.ps", core.DynOptions{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.api.SetClose(sd) }()
	entries := drain(t, w.api, sd)
	if len(entries) != 1 || entries[0].Name != "paper02.ps" {
		t.Fatalf("matched %v, want just paper02.ps", entries)
	}
	skipped, err := w.api.Skipped(sd)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want the two s0 entries", skipped)
	}
}

func TestBadDescriptor(t *testing.T) {
	w := newAPIWorld(t)
	if _, _, err := w.api.SetIterate(context.Background(), 99); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("err = %v", err)
	}
	if err := w.api.SetClose(99); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("err = %v", err)
	}
	if _, err := w.api.Skipped(99); !errors.Is(err, ErrBadDescriptor) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadPatterns(t *testing.T) {
	w := newAPIWorld(t)
	ctx := context.Background()
	if _, err := w.api.SetOpen(ctx, "/p*b/x", core.DynOptions{}); !errors.Is(err, ErrBadPattern) {
		t.Fatalf("glob in dir accepted: %v", err)
	}
	if _, err := w.api.SetOpen(ctx, "/pub/[", core.DynOptions{}); !errors.Is(err, ErrBadPattern) {
		t.Fatalf("malformed class accepted: %v", err)
	}
}

func TestNotMounted(t *testing.T) {
	c, err := cluster.New(cluster.Config{StorageNodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	api := New(c.Client)
	if _, err := api.SetOpen(context.Background(), "/pub/*", core.DynOptions{}); !errors.Is(err, ErrNotMounted) {
		t.Fatalf("err = %v", err)
	}
}

func TestMountLongestPrefixWins(t *testing.T) {
	w := newAPIWorld(t)
	ctx := context.Background()
	// Create a subtree hosted on a different node and mount it.
	sub := w.c.Storage[1]
	if err := w.api.FS().Mkdir(ctx, cluster.DirNode, sub, "/pub/deep"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.api.FS().WriteFile(ctx, sub, w.c.Storage[2], "/pub/deep/x.ps", []byte("d")); err != nil {
		t.Fatal(err)
	}
	w.api.Mount("/pub/deep", sub)

	sd, err := w.api.SetOpen(ctx, "/pub/deep/*.ps", core.DynOptions{Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.api.SetClose(sd) }()
	if got := drain(t, w.api, sd); len(got) != 1 || got[0].Name != "x.ps" {
		t.Fatalf("deep listing = %v", got)
	}
}

func TestCloseAll(t *testing.T) {
	w := newAPIWorld(t)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := w.api.SetOpen(ctx, "/pub/*", core.DynOptions{Width: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if w.api.OpenCount() != 3 {
		t.Fatalf("open = %d", w.api.OpenCount())
	}
	w.api.CloseAll()
	if w.api.OpenCount() != 0 {
		t.Fatalf("open after CloseAll = %d", w.api.OpenCount())
	}
}
