package wais

import (
	"context"
	"testing"

	"weaksets/internal/cluster"
)

func newCluster(t *testing.T) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestBuildGeneric(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	corpus, err := Build(ctx, c, Spec{Coll: "g", N: 10, Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Refs) != 10 {
		t.Fatalf("refs = %d", len(corpus.Refs))
	}
	members, _, err := c.Client.List(ctx, corpus.Dir, corpus.Coll)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 10 {
		t.Fatalf("members = %d", len(members))
	}
	obj, err := c.Client.Get(ctx, corpus.Refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Data) != 16 {
		t.Fatalf("data size = %d", len(obj.Data))
	}
}

func TestBuildFaces(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	corpus, err := BuildFaces(ctx, c, 12)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := c.Client.Get(ctx, corpus.Refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if obj.Attrs["dept"] == "" || obj.Attrs["user"] == "" {
		t.Fatalf("attrs = %v", obj.Attrs)
	}
}

func TestBuildLibraryZipfPlacement(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	corpus, err := BuildLibrary(ctx, c, []string{"wing", "steere", "liskov"}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Refs) != 60 {
		t.Fatalf("refs = %d", len(corpus.Refs))
	}
	// Zipf placement must skew: the most-loaded node should hold clearly
	// more than the least-loaded one.
	counts := make(map[string]int)
	for _, ref := range corpus.Refs {
		counts[string(ref.Node)]++
	}
	max, min := 0, len(corpus.Refs)
	for _, n := range counts {
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max <= min {
		t.Fatalf("placement not skewed: %v", counts)
	}
	// The papers-by-author query finds exactly that author's papers.
	papers, err := FilterAttr(ctx, c.Client, corpus.Refs, "author", "wing")
	if err != nil {
		t.Fatal(err)
	}
	if len(papers) != 20 {
		t.Fatalf("papers by wing = %d, want 20", len(papers))
	}
}

func TestBuildRestaurantsFilter(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	corpus, err := BuildRestaurants(ctx, c, 25)
	if err != nil {
		t.Fatal(err)
	}
	chinese, err := FilterAttr(ctx, c.Client, corpus.Refs, "cuisine", "chinese")
	if err != nil {
		t.Fatal(err)
	}
	if len(chinese) != 5 {
		t.Fatalf("chinese = %d, want 5 of 25", len(chinese))
	}
}

func TestBuildDuplicateCollection(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	if _, err := Build(ctx, c, Spec{Coll: "dup", N: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ctx, c, Spec{Coll: "dup", N: 1}); err == nil {
		t.Fatal("duplicate collection accepted")
	}
}

func TestFilterAttrUnreachable(t *testing.T) {
	c := newCluster(t)
	ctx := context.Background()
	corpus, err := Build(ctx, c, Spec{Coll: "f", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Net.Isolate(c.Storage[0])
	if _, err := FilterAttr(ctx, c.Client, corpus.Refs, "k", "v"); err == nil {
		t.Fatal("filter over partition succeeded")
	}
}
