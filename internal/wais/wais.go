// Package wais builds wide-area information-system corpora matching the
// paper's three motivating scenarios (§1): the .face files of everyone on a
// home page, a library information system's papers-by-author query, and
// the on-line menus of a city's restaurants. Objects are scattered over
// storage nodes — optionally Zipf-skewed, since real repositories
// concentrate on popular servers — and collected into a repository
// collection a weak set can iterate.
package wais

import (
	"context"
	"fmt"

	"weaksets/internal/cluster"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// Corpus is a built scenario: the collection and its member refs.
type Corpus struct {
	Dir  netsim.NodeID
	Coll string
	Refs []repo.Ref
}

// Spec describes a corpus to build.
type Spec struct {
	// Coll names the collection (created on the cluster's DirNode).
	Coll string
	// N is the number of objects.
	N int
	// Size is each object's payload size in bytes.
	Size int
	// IDFmt formats object IDs from their index; defaults to
	// "<coll>-%04d".
	IDFmt string
	// Attrs, when set, supplies per-object attributes.
	Attrs func(i int) map[string]string
	// ZipfPlacement, when > 0, skews object placement over the storage
	// nodes with this exponent; otherwise placement is round-robin.
	ZipfPlacement float64
}

// Build creates the objects and collection described by sp.
func Build(ctx context.Context, c *cluster.Cluster, sp Spec) (Corpus, error) {
	if sp.IDFmt == "" {
		sp.IDFmt = sp.Coll + "-%04d"
	}
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, sp.Coll); err != nil {
		return Corpus{}, fmt.Errorf("wais: %w", err)
	}
	var zipf *sim.Zipf
	if sp.ZipfPlacement > 0 {
		zipf = sim.NewZipf(len(c.Storage), sp.ZipfPlacement)
	}
	refs := make([]repo.Ref, 0, sp.N)
	for i := 0; i < sp.N; i++ {
		node := c.StorageFor(i)
		if zipf != nil {
			node = c.Storage[zipf.Rank(c.Rand)]
		}
		obj := repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf(sp.IDFmt, i)),
			Data: make([]byte, sp.Size),
		}
		if sp.Attrs != nil {
			obj.Attrs = sp.Attrs(i)
		}
		ref, err := c.Client.Put(ctx, node, obj)
		if err != nil {
			return Corpus{}, fmt.Errorf("wais: put %q: %w", obj.ID, err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, sp.Coll, ref); err != nil {
			return Corpus{}, fmt.Errorf("wais: add %q: %w", obj.ID, err)
		}
		refs = append(refs, ref)
	}
	return Corpus{Dir: cluster.DirNode, Coll: sp.Coll, Refs: refs}, nil
}

// Departments used by the faces scenario.
var Departments = []string{"cs", "ece", "ml", "ri", "hcii"}

// BuildFaces builds the "display the .face files of all people listed on
// the home page" scenario: n small image objects tagged with a department.
func BuildFaces(ctx context.Context, c *cluster.Cluster, n int) (Corpus, error) {
	return Build(ctx, c, Spec{
		Coll: "faces",
		N:    n,
		Size: 1024,
		Attrs: func(i int) map[string]string {
			return map[string]string{
				"dept": Departments[i%len(Departments)],
				"user": fmt.Sprintf("user%03d", i),
			}
		},
	})
}

// BuildLibrary builds the library-information-system scenario: papers by a
// set of authors, Zipf-placed on storage nodes (popular archives hold
// more). The collection holds every paper; Attrs["author"] supports the
// papers-by-author query.
func BuildLibrary(ctx context.Context, c *cluster.Cluster, authors []string, papersPerAuthor int) (Corpus, error) {
	n := len(authors) * papersPerAuthor
	return Build(ctx, c, Spec{
		Coll:          "lis",
		N:             n,
		Size:          4096,
		ZipfPlacement: 1.2,
		Attrs: func(i int) map[string]string {
			return map[string]string{
				"author": authors[i/papersPerAuthor],
				"year":   fmt.Sprintf("%d", 1980+i%15),
			}
		},
	})
}

// Cuisines used by the restaurants scenario.
var Cuisines = []string{"chinese", "thai", "italian", "diner", "indian"}

// BuildRestaurants builds the "menus of all Chinese restaurants in
// Pittsburgh" scenario: n menu objects tagged with a cuisine.
func BuildRestaurants(ctx context.Context, c *cluster.Cluster, n int) (Corpus, error) {
	return Build(ctx, c, Spec{
		Coll: "menus",
		N:    n,
		Size: 2048,
		Attrs: func(i int) map[string]string {
			return map[string]string{
				"cuisine": Cuisines[i%len(Cuisines)],
				"name":    fmt.Sprintf("restaurant-%03d", i),
			}
		},
	})
}

// FilterAttr selects the refs whose object attribute matches. It reads
// each object, so it models the client-side predicate evaluation a weak
// set query performs.
func FilterAttr(ctx context.Context, client *repo.Client, refs []repo.Ref, key, want string) ([]repo.Ref, error) {
	var out []repo.Ref
	for _, ref := range refs {
		obj, err := client.Get(ctx, ref)
		if err != nil {
			return out, err
		}
		if obj.Attrs[key] == want {
			out = append(out, ref)
		}
	}
	return out, nil
}
