package weaksets

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestFacadeEndToEnd exercises the whole public surface through the root
// package, the way an application would.
func TestFacadeEndToEnd(t *testing.T) {
	c, err := NewCluster(ClusterConfig{StorageNodes: 3, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if err := c.Client.CreateCollection(ctx, DirNode, "menus"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cuisine := "thai"
		if i%2 == 0 {
			cuisine = "chinese"
		}
		obj := Object{
			ID:    ObjectID(fmt.Sprintf("menu-%d", i)),
			Data:  []byte("menu body"),
			Attrs: map[string]string{"cuisine": cuisine},
		}
		ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Client.Add(ctx, DirNode, "menus", ref); err != nil {
			t.Fatal(err)
		}
	}

	set, err := NewSet(c.Client, DirNode, "menus", Options{Semantics: Optimistic})
	if err != nil {
		t.Fatal(err)
	}
	elems, err := set.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != 6 {
		t.Fatalf("collected %d", len(elems))
	}

	ds, err := OpenDyn(ctx, c.Client, DirNode, "menus", DynOptions{Width: 3, Order: OrderClosestFirst})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ds.Next(ctx) {
		n++
	}
	_ = ds.Close()
	if n != 6 {
		t.Fatalf("dynamic yielded %d", n)
	}

	q, err := NewQuery(c.Client, DirNode, "menus", `cuisine == "chinese"`)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := q.Count(ctx, QueryOptions{Semantics: Snapshot})
	if err != nil {
		t.Fatal(err)
	}
	if matches != 3 {
		t.Fatalf("matches = %d, want 3", matches)
	}

	// Failure surface.
	c.Net.Isolate(c.Storage[0])
	pess, err := NewSet(c.Client, DirNode, "menus", Options{Semantics: GrowOnly})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pess.Collect(ctx); !errors.Is(err, ErrFailure) {
		t.Fatalf("err = %v, want ErrFailure", err)
	}

	if len(AllSemantics()) != 6 {
		t.Fatal("AllSemantics wrong")
	}
}
