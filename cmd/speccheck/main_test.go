package main

import "testing"

func TestRunMatrix(t *testing.T) {
	if err := run([]string{"-seeds", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecs(t *testing.T) {
	if err := run([]string{"-specs"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustive(t *testing.T) {
	if err := run([]string{"-seeds", "5", "-exhaustive", "3"}); err != nil {
		t.Fatal(err)
	}
}
