// Command speccheck exercises the executable specifications: it drives the
// pure semantic kernel of every implemented semantics against thousands of
// random model environments (under the environment discipline each
// constraint clause demands) and checks every recorded run against the
// ensures clause of every specification figure, printing the conformance
// matrix. The diagonal must read 100%; off-diagonal entries expose the
// strictness lattice of the design space (§3 of the paper).
//
// Usage:
//
//	speccheck [-seeds 500] [-steps 150] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"

	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "speccheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("speccheck", flag.ContinueOnError)
	var (
		seeds      = fs.Int("seeds", 500, "random environments per cell")
		steps      = fs.Int("steps", 150, "max kernel invocations per run")
		verbose    = fs.Bool("verbose", false, "print first violation per cell")
		showSpecs  = fs.Bool("specs", false, "print the formal text of every figure and exit")
		exhaustive = fs.Int("exhaustive", 0, "also exhaustively model-check every kernel over worlds of N elements (1..8)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *showSpecs {
		for i, fig := range spec.Figures() {
			if i > 0 {
				fmt.Println()
			}
			fmt.Println(spec.Render(fig))
		}
		return nil
	}

	figures := spec.Figures()
	headers := []string{"implementation \\ spec"}
	for _, f := range figures {
		headers = append(headers, f.String())
	}
	table := metrics.NewTable(
		fmt.Sprintf("conformance matrix over %d random model runs per cell", *seeds),
		headers...,
	)

	selfViolations := 0
	for _, sem := range core.AllSemantics() {
		row := []string{sem.String()}
		for _, fig := range figures {
			pass := 0
			var firstViolation error
			for seed := 0; seed < *seeds; seed++ {
				env := spec.NewEnv(sim.NewRand(int64(seed)), 8, sem.Constraint())
				run, _ := core.RunModel(sem, env, core.ModelConfig{
					MaxSteps:        *steps,
					HealAfterBlocks: 3,
					FreezeAfter:     *steps / 2,
				})
				if err := spec.CheckRun(fig, run); err == nil {
					pass++
				} else if firstViolation == nil {
					firstViolation = err
				}
			}
			rate := float64(pass) / float64(*seeds)
			row = append(row, metrics.FmtPct(rate))
			if fig == sem.Figure() && pass != *seeds {
				selfViolations++
				fmt.Fprintf(os.Stderr, "SELF-CONFORMANCE FAILURE: %s vs %s: %v\n", sem, fig, firstViolation)
			}
			if *verbose && firstViolation != nil {
				fmt.Printf("  %s vs %s: e.g. %v\n", sem, fig, firstViolation)
			}
		}
		table.AddRow(row...)
	}

	table.Render(os.Stdout)

	if *exhaustive > 0 {
		fmt.Println()
		ex := metrics.NewTable(
			fmt.Sprintf("exhaustive model check over every world of %d elements", *exhaustive),
			"semantics", "states", "invocations", "verdict")
		for _, sem := range core.AllSemantics() {
			res, err := core.ExhaustiveConformance(sem, *exhaustive)
			verdict := "conforms (proved within bound)"
			if err != nil {
				verdict = "VIOLATION: " + err.Error()
				selfViolations++
			}
			ex.AddRow(sem.String(), fmt.Sprintf("%d", res.States), fmt.Sprintf("%d", res.Invocations), verdict)
		}
		ex.Render(os.Stdout)
	}

	// The Garcia-Molina/Wiederhold classification of each point (§4).
	fmt.Println()
	tax := metrics.NewTable("taxonomy (Garcia-Molina & Wiederhold, per §4)",
		"figure", "consistency", "currency")
	for _, fig := range figures {
		cons, curr := spec.Taxonomy(fig)
		tax.AddRow(fig.String(), cons.String(), curr.String())
	}
	tax.Render(os.Stdout)

	fmt.Println()
	fmt.Println("reading the matrix: each implementation must pass its own figure (the")
	fmt.Println("diagonal); off-diagonal passes show where the design points coincide on")
	fmt.Println("benign environments, and misses show the strictness lattice separating them.")
	if selfViolations > 0 {
		return fmt.Errorf("%d self-conformance failures", selfViolations)
	}
	return nil
}
