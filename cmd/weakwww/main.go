// Command weakwww serves weak-set queries over real HTTP — the library's
// World-Wide-Web face (§1 of the paper). It builds the three motivating
// corpora on a simulated wide-area cluster, optionally keeps a background
// editor mutating them, and exposes the httpgw endpoints:
//
//	weakwww -addr 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/semantics'
//	curl 'http://127.0.0.1:8080/specs/fig6'
//	curl 'http://127.0.0.1:8080/collections/menus'
//	curl 'http://127.0.0.1:8080/query?coll=menus&q=cuisine=="chinese"&sem=optimistic'
//	curl 'http://127.0.0.1:8080/metrics'
//	curl 'http://127.0.0.1:8080/trace'            # then /trace?id=<id>
//	curl 'http://127.0.0.1:8080/events?type=lease.grant'
//	curl 'http://127.0.0.1:8080/cluster'          # this node + every -peers gateway
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/httpgw"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
	"weaksets/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakwww:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakwww", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		scale    = fs.Float64("scale", 0.01, "virtual-to-real time scale")
		mutate   = fs.Bool("mutate", true, "keep a background editor mutating the menus")
		sample   = fs.Int("sample", 1, "trace 1 in N query runs (1 = every run)")
		cache    = fs.Int("cache", 4096, "element cache capacity in objects (0 disables)")
		lease    = fs.Bool("lease", true, "hold invalidation leases on the corpora (push beats revalidate)")
		pprof    = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		journal  = fs.Int("journal", obs.DefaultJournalCapacity, "event journal capacity (0 disables /events)")
		peers    = fs.String("peers", "", "comma-separated peer gateways for /cluster, each url or name=url, e.g. b=http://host:8081")
		replicas = fs.Int("replicas", 1, "replicate each corpus across N nodes and serve queries from the closest live replica (1 = home only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := cluster.New(cluster.Config{
		StorageNodes: 6,
		Seed:         2026,
		Scale:        sim.TimeScale(*scale),
		Latency:      sim.Fixed(15 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	tracer := obs.NewTracer("weakwww", obs.Config{Sample: *sample})
	weakness := obs.NewRegistry()
	c.UseTracer(tracer)
	var events *obs.Journal
	if *journal > 0 {
		events = obs.NewJournal(*journal)
		c.UseJournal(events)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	menus, err := wais.BuildRestaurants(ctx, c, 30)
	if err != nil {
		return err
	}
	faces, err := wais.BuildFaces(ctx, c, 25)
	if err != nil {
		return err
	}
	lib, err := wais.BuildLibrary(ctx, c, []string{"wing", "steere", "liskov"}, 8)
	if err != nil {
		return err
	}
	fmt.Println("corpora ready: menus (30), faces (25), lis (24)")

	if *lease {
		ls := repo.NewLeaseState(c.Client, menus.Dir, menus.Coll, faces.Coll, lib.Coll)
		ls.UseJournal(events)
		if err := ls.Start(ctx); err != nil {
			return fmt.Errorf("lease start: %w", err)
		}
		defer ls.Stop()
		c.Client.UseLeases(ls)
		fmt.Println("invalidation leases held on the corpora; lease stats under /stats and /metrics")
	}

	if *mutate {
		mut := workload.NewMutator(workload.MutatorConfig{
			Client:      c.ClientAt(c.Storage[0]),
			Dir:         menus.Dir,
			Coll:        menus.Coll,
			AddEvery:    2 * time.Second,
			RemoveEvery: 5 * time.Second,
			ObjectNodes: c.Storage,
			ObjectSize:  512,
			IDPrefix:    "new-restaurant",
			Initial:     menus.Refs,
			Rand:        sim.NewRand(5),
		})
		mut.Start(ctx)
		defer mut.Stop()
		fmt.Println("background editor running (menus change every few virtual seconds)")
	}

	gw := httpgw.New(c.Client, cluster.DirNode, c.LockNode)
	gw.UseObs(weakness, tracer)
	if *replicas > 1 {
		for _, coll := range []string{menus.Coll, faces.Coll, lib.Coll} {
			nodes, err := c.Replicate(coll, *replicas)
			if err != nil {
				return err
			}
			gw.UseReplicas(coll, nodes)
		}
		c.Servers[cluster.DirNode].SetAntiEntropy(2 * time.Second)
		fmt.Printf("corpora replicated across %d nodes; reads scatter to the closest live replica, staleness under /metrics (weaksets_replica_*)\n", *replicas)
	}
	if events != nil {
		gw.UseJournal(events)
		fmt.Printf("event journal enabled (%d events); query under /events\n", *journal)
	}
	for _, peer := range strings.Split(*peers, ",") {
		if peer = strings.TrimSpace(peer); peer != "" {
			name, url, named := strings.Cut(peer, "=")
			if !named {
				name, url = peer, peer
			}
			gw.AddPeer(name, url)
		}
	}
	if *peers != "" {
		fmt.Println("peer gateways registered; merged fleet view under /cluster")
	}
	if *cache > 0 {
		gw.UseCache(repo.NewCache(*cache))
		fmt.Printf("element cache enabled (%d objects); stats under /stats and /metrics\n", *cache)
	}
	if *pprof {
		gw.EnablePprof()
		fmt.Println("pprof enabled under /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	fmt.Printf("serving on http://%s  (ctrl-c to stop)\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}
