package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
)

// obsResult is one row of the -obs sweep: the BenchmarkIterFetch-shaped
// workload (64-element snapshot Collect, batched pipeline, 4 storage
// nodes) repeated under one observability mode.
type obsResult struct {
	// Mode: "off" (no instrumentation), "weakness" (report counters
	// only), "sampled" (tracer at 1-in-N, the production setting), or
	// "full" (every run traced).
	Mode        string        `json:"mode"`
	Sample      int           `json:"sample"`
	Runs        int           `json:"runs"`
	Elapsed     time.Duration `json:"elapsedNs"`
	ElemsPerSec float64       `json:"elemsPerSec"`
	// SpansRetained shows the mode did what it claims: zero for off and
	// weakness, small for sampled, large for full.
	SpansRetained int `json:"spansRetained"`
}

// obsReport is the BENCH_obs.json document. OverheadPct maps each mode to
// its throughput cost relative to "off" (negative = noise in the mode's
// favour); the acceptance bar for the instrumented hot path is ~5%.
type obsReport struct {
	Meta         benchMeta          `json:"meta"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Elements     int                `json:"elements"`
	RunsPerTrial int                `json:"runsPerTrial"`
	Trials       int                `json:"trials"`
	Seed         int64              `json:"seed"`
	Results      []obsResult        `json:"results"`
	OverheadPct  map[string]float64 `json:"overheadPct"`
}

// obsMode is one observability configuration under test.
type obsMode struct {
	name   string
	sample int // 0 = no tracer
	weak   bool
}

// runObsSweep measures what the observability layer costs on the elements
// hot path: the same 64-element snapshot Collect that BenchmarkIterFetch
// times, run back to back with instrumentation off, with weakness
// counters only, with a 1-in-64 sampled tracer, and with every run fully
// traced. Each mode reports the median of `trials` timed batches so a
// stray scheduler hiccup doesn't decide the verdict.
func runObsSweep(jsonPath string, quick bool, seed int64) error {
	const elements = 64
	runs, trials := 60, 5
	if quick {
		runs, trials = 15, 3
	}
	modes := []obsMode{
		{name: "off"},
		{name: "weakness", weak: true},
		{name: "sampled", sample: 64, weak: true},
		{name: "full", sample: 1, weak: true},
	}

	report := obsReport{
		Meta:         inprocMeta(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Elements:     elements,
		RunsPerTrial: runs,
		Trials:       trials,
		Seed:         seed,
		OverheadPct:  map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Observability overhead: %d-element snapshot Collect, %d runs x %d trials (median)",
			elements, runs, trials),
		"mode", "sample", "elems/sec", "spans kept", "overhead")

	ctx := context.Background()
	base := 0.0
	for _, mode := range modes {
		res, err := runObsMode(ctx, mode, elements, runs, trials, seed)
		if err != nil {
			return fmt.Errorf("obs sweep: %s: %w", mode.name, err)
		}
		report.Results = append(report.Results, res)

		overhead := "-"
		if mode.name == "off" {
			base = res.ElemsPerSec
		} else if base > 0 {
			pct := (base - res.ElemsPerSec) / base * 100
			report.OverheadPct[mode.name] = pct
			overhead = fmt.Sprintf("%+.1f%%", pct)
		}
		table.AddRow(
			mode.name,
			fmt.Sprintf("%d", res.Sample),
			fmt.Sprintf("%.0f", res.ElemsPerSec),
			fmt.Sprintf("%d", res.SpansRetained),
			overhead,
		)
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("obs sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("obs sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// runObsMode builds a fresh cluster, populates the benchmark collection,
// and times `trials` batches of `runs` Collects under one mode, keeping
// the median batch.
func runObsMode(ctx context.Context, mode obsMode, elements, runs, trials int, seed int64) (obsResult, error) {
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: seed})
	if err != nil {
		return obsResult{}, err
	}
	defer c.Close()

	var (
		tracer   *obs.Tracer
		weakness *obs.Registry
	)
	if mode.sample > 0 {
		tracer = obs.NewTracer("weakbench", obs.Config{Sample: mode.sample})
		c.UseTracer(tracer)
	}
	if mode.weak {
		// Windows are on by default; the journal rides along too, so the
		// overhead figure prices the whole accounting plane, not just the
		// lifetime counters.
		weakness = obs.NewRegistry()
		weakness.UseJournal(obs.NewJournal(0))
	}

	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "bench"); err != nil {
		return obsResult{}, err
	}
	for i := 0; i < elements; i++ {
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
			Data: make([]byte, 128),
		})
		if err == nil {
			err = c.Client.Add(ctx, cluster.DirNode, "bench", ref)
		}
		if err != nil {
			return obsResult{}, fmt.Errorf("populate: %w", err)
		}
	}
	set, err := core.NewSet(c.Client, cluster.DirNode, "bench", core.Options{
		Semantics: core.Snapshot,
		Tracer:    tracer,
		Weakness:  weakness,
	})
	if err != nil {
		return obsResult{}, err
	}

	collect := func() error {
		elems, err := set.Collect(ctx)
		if err != nil {
			return err
		}
		if len(elems) != elements {
			return fmt.Errorf("yielded %d, want %d", len(elems), elements)
		}
		return nil
	}
	// Warm up caches, connections and the prefetch planner.
	for i := 0; i < 3; i++ {
		if err := collect(); err != nil {
			return obsResult{}, err
		}
	}

	elapsed := make([]time.Duration, 0, trials)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < runs; i++ {
			if err := collect(); err != nil {
				return obsResult{}, err
			}
		}
		elapsed = append(elapsed, time.Since(start))
	}
	sort.Slice(elapsed, func(i, j int) bool { return elapsed[i] < elapsed[j] })
	median := elapsed[len(elapsed)/2]

	res := obsResult{
		Mode:          mode.name,
		Sample:        mode.sample,
		Runs:          runs,
		Elapsed:       median,
		SpansRetained: tracer.Stats().Retained,
	}
	if s := median.Seconds(); s > 0 {
		res.ElemsPerSec = float64(elements*runs) / s
	}
	return res, nil
}
