package main

// The -frontier sweep: the weakness-versus-throughput frontier the paper's
// position implies. Weak semantics exist to buy throughput; this sweep
// prices the trade instead of asserting it. At each load level N readers
// hammer one collection with optimistic Collects while a writer churns the
// membership, and the rolling weakness windows record what the clients
// actually observed — run latency quantiles, listing skew, duplicates
// suppressed. Each level becomes one (throughput, weakness-quantile) point
// of BENCH_frontier.json; plotted together they are the frontier.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
)

// frontierPoint is one load level of the -frontier sweep.
type frontierPoint struct {
	Readers int           `json:"readers"`
	Runs    int64         `json:"runs"`
	Yielded int64         `json:"yielded"`
	Elapsed time.Duration `json:"elapsedNs"`
	// Throughput axis.
	RunsPerSec  float64 `json:"runsPerSec"`
	ElemsPerSec float64 `json:"elemsPerSec"`
	// Weakness axis: quantiles over the level's rolling windows.
	LatencyP50 time.Duration `json:"latencyP50Ns"`
	LatencyP95 time.Duration `json:"latencyP95Ns"`
	LatencyP99 time.Duration `json:"latencyP99Ns"`
	// SkewP99 and DuplicatesP99 are per-run counts at the 99th
	// percentile: what an unlucky run sees, not the average.
	SkewP99       int64 `json:"skewP99"`
	DuplicatesP99 int64 `json:"duplicatesP99"`
	// SkewPerRun is the lifetime mean for the level, the frontier's
	// center-of-mass companion to the tail figure.
	SkewPerRun float64 `json:"skewPerRun"`
	Writes     int64   `json:"writes"`
}

// frontierReport is the BENCH_frontier.json document.
type frontierReport struct {
	Meta          benchMeta       `json:"meta"`
	GOMAXPROCS    int             `json:"gomaxprocs"`
	Elements      int             `json:"elements"`
	RunsPerReader int             `json:"runsPerReader"`
	Readers       []int           `json:"readers"`
	Seed          int64           `json:"seed"`
	Results       []frontierPoint `json:"results"`
}

// runFrontierSweep drives the frontier: for each reader count, N
// concurrent optimistic Collects against a churning collection, weakness
// accounted through a fresh registry's rolling windows.
func runFrontierSweep(jsonPath string, quick bool, seed int64) error {
	const elements = 96
	readers := []int{1, 2, 4, 8, 16}
	runsPerReader := 30
	if quick {
		readers = []int{1, 8}
		runsPerReader = 8
	}

	report := frontierReport{
		Meta:          inprocMeta(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Elements:      elements,
		RunsPerReader: runsPerReader,
		Readers:       readers,
		Seed:          seed,
	}
	table := metrics.NewTable(
		fmt.Sprintf("Weakness-throughput frontier: %d-element optimistic Collect under churn, %d runs/reader",
			elements, runsPerReader),
		"readers", "runs/sec", "elems/sec", "lat p50", "lat p99", "skew p99", "dup p99", "skew/run")

	for _, n := range readers {
		point, err := runFrontierLevel(n, elements, runsPerReader, seed)
		if err != nil {
			return fmt.Errorf("frontier: readers=%d: %w", n, err)
		}
		report.Results = append(report.Results, point)
		table.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", point.RunsPerSec),
			fmt.Sprintf("%.0f", point.ElemsPerSec),
			metrics.FmtDur(point.LatencyP50),
			metrics.FmtDur(point.LatencyP99),
			fmt.Sprintf("%d", point.SkewP99),
			fmt.Sprintf("%d", point.DuplicatesP99),
			fmt.Sprintf("%.2f", point.SkewPerRun),
		)
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("frontier: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("frontier: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("frontier: %w", err)
	}
	fmt.Printf("wrote %s (%d load points)\n", jsonPath, len(report.Results))
	return nil
}

// runFrontierLevel builds a fresh cluster and registry, churns the
// collection from a writer goroutine, and times `n` readers collecting
// `runs` times each.
func runFrontierLevel(n, elements, runs int, seed int64) (frontierPoint, error) {
	ctx := context.Background()
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: seed})
	if err != nil {
		return frontierPoint{}, err
	}
	defer c.Close()
	weakness := obs.NewRegistry()

	const coll = "frontier"
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
		return frontierPoint{}, err
	}
	for i := 0; i < elements; i++ {
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
			Data: make([]byte, 256),
		})
		if err == nil {
			err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
		}
		if err != nil {
			return frontierPoint{}, fmt.Errorf("populate: %w", err)
		}
	}

	// The writer: add a member, remove the previous add, sleep a beat —
	// membership stays ~stable in size but the listing version never
	// stops moving, which is what optimistic runs trade consistency
	// against.
	var (
		writes    atomic.Int64
		churnStop = make(chan struct{})
		churnDone = make(chan struct{})
	)
	writer := c.ClientAt(c.Storage[0])
	go func() {
		defer close(churnDone)
		var last *repo.Ref
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			ref, err := writer.Put(ctx, c.StorageFor(i), repo.Object{
				ID:   repo.ObjectID(fmt.Sprintf("churn%06d", i)),
				Data: make([]byte, 256),
			})
			if err == nil {
				err = writer.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err == nil && last != nil {
				_, err = writer.Remove(ctx, cluster.DirNode, coll, last.ID)
			}
			if err != nil {
				return
			}
			last = &ref
			writes.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	var (
		wg      sync.WaitGroup
		yielded atomic.Int64
		errMu   sync.Mutex
		readErr error
	)
	start := time.Now()
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			set, err := core.NewSet(c.Client, cluster.DirNode, coll, core.Options{
				Semantics: core.Optimistic,
				Weakness:  weakness,
			})
			if err == nil {
				for i := 0; i < runs; i++ {
					var elems []core.Element
					if elems, err = set.Collect(ctx); err != nil {
						break
					}
					yielded.Add(int64(len(elems)))
				}
			}
			if err != nil {
				errMu.Lock()
				if readErr == nil {
					readErr = err
				}
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(churnStop)
	<-churnDone
	if readErr != nil {
		return frontierPoint{}, readErr
	}

	point := frontierPoint{
		Readers: n,
		Runs:    int64(n * runs),
		Yielded: yielded.Load(),
		Elapsed: elapsed,
		Writes:  writes.Load(),
	}
	if s := elapsed.Seconds(); s > 0 {
		point.RunsPerSec = float64(point.Runs) / s
		point.ElemsPerSec = float64(point.Yielded) / s
	}
	for _, cw := range weakness.Windows() {
		if cw.Collection != coll {
			continue
		}
		if lat, ok := cw.Metrics[obs.WinLatency]; ok {
			point.LatencyP50, point.LatencyP95, point.LatencyP99 = lat.P50, lat.P95, lat.P99
		}
		if skew, ok := cw.Metrics[obs.WinListingSkew]; ok {
			point.SkewP99 = int64(skew.P99)
		}
		if dup, ok := cw.Metrics[obs.WinDuplicates]; ok {
			point.DuplicatesP99 = int64(dup.P99)
		}
	}
	for _, agg := range weakness.Snapshot() {
		if agg.Collection == coll && agg.Runs > 0 {
			point.SkewPerRun = float64(agg.ListingSkew) / float64(agg.Runs)
		}
	}
	return point, nil
}
