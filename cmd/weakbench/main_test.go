package main

import (
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E6", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRPCSweepQuick(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_rpc.json")
	if err := run([]string{"-rpc", "-rpc-quick", "-rpc-latency", "1ms", "-rpc-json", out}); err != nil {
		t.Fatal(err)
	}
}
