package main

// The -trend gate: the ROADMAP trend-tracking item. It re-runs the quick
// cache, TCP, observability, and scale sweeps, then compares the figures
// that are stable across sweep sizes against the committed BENCH_*.json
// reports and fails loudly on gross regressions. Absolute throughput is
// deliberately not compared — the smoke sweeps are smaller and the
// machines differ — only ratios and invariants that a correct
// implementation reproduces at any size: payload bytes elided by the warm
// cache, read RPCs per steady-state leased run, the multiplexing speedup,
// the wirebin-over-gob step, the observability overhead ceiling, and the
// partitioned listing's per-element and first-element degradation caps.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"weaksets/internal/sim"
)

// trendCheck is one gated comparison under the tolerance policy. Fractions compare
// by absolute difference; ratios compare multiplicatively, failing only
// below committed*(1-tol) — a smoke run being faster is never a failure.
type trendCheck struct {
	name      string
	committed float64
	smoke     float64
	kind      string // "fraction" (abs diff) or "ratio" (multiplicative floor)
}

func (tc trendCheck) failure(tol float64) string {
	switch tc.kind {
	case "fraction":
		// Fractions live on [0,1]; a fixed absolute band is the right
		// scale and symmetric (elision getting "better" than committed by
		// more than the band would be just as suspicious a measurement).
		const band = 0.15
		if d := tc.smoke - tc.committed; d > band || d < -band {
			return fmt.Sprintf("%s: smoke %.3f vs committed %.3f (band ±%.2f)", tc.name, tc.smoke, tc.committed, band)
		}
	case "ratio":
		if floor := tc.committed * (1 - tol); tc.smoke < floor {
			return fmt.Sprintf("%s: smoke %.2fx vs committed %.2fx (floor %.2fx)", tc.name, tc.smoke, tc.committed, floor)
		}
	}
	return ""
}

func loadTrendReport(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// trendPaths names the committed reports the gate compares against.
type trendPaths struct {
	cache, rpc, obs, scale string
}

// runTrend runs the quick sweeps and gates them against the committed
// reports. tol is the multiplicative tolerance for ratio comparisons.
func runTrend(committed trendPaths, tol float64, seed int64, rpcLat time.Duration) error {
	const (
		cacheSmokePath = "/tmp/BENCH_cache_trend.json"
		rpcSmokePath   = "/tmp/BENCH_rpc_trend.json"
		obsSmokePath   = "/tmp/BENCH_obs_trend.json"
		scaleSmokePath = "/tmp/BENCH_scale_trend.json"
	)
	fmt.Printf("trend gate: smoke sweeps vs %s, %s, %s, %s (ratio tolerance %.0f%%)\n\n",
		committed.cache, committed.rpc, committed.obs, committed.scale, 100*tol)
	if err := runCacheSweep(cacheSmokePath, true, seed, sim.TimeScale(1)); err != nil {
		return fmt.Errorf("trend: cache smoke: %w", err)
	}
	fmt.Println()
	if err := runRPCSweep(rpcSmokePath, true, rpcLat); err != nil {
		return fmt.Errorf("trend: rpc smoke: %w", err)
	}
	fmt.Println()
	if err := runObsSweep(obsSmokePath, true, seed); err != nil {
		return fmt.Errorf("trend: obs smoke: %w", err)
	}
	fmt.Println()
	if err := runScaleSweep(scaleSmokePath, true, seed); err != nil {
		return fmt.Errorf("trend: scale smoke: %w", err)
	}
	fmt.Println()

	var checks []trendCheck
	var failures, skipped []string

	var cacheCom, cacheSmoke cacheReport
	if err := loadTrendReport(committed.cache, &cacheCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(cacheSmokePath, &cacheSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	for sem, com := range cacheCom.ByteReduction {
		smoke, ok := cacheSmoke.ByteReduction[sem]
		if !ok {
			skipped = append(skipped, "cache byteReduction/"+sem)
			continue
		}
		checks = append(checks, trendCheck{"cache byteReduction/" + sem, com, smoke, "fraction"})
	}
	for sem, com := range cacheCom.LeaseSteadyRPCsPerRun {
		smoke, ok := cacheSmoke.LeaseSteadyRPCsPerRun[sem]
		if !ok {
			skipped = append(skipped, "cache leaseSteadyRPCsPerRun/"+sem)
			continue
		}
		// The leased steady state must stay at (or within rounding of)
		// the committed zero: any run that starts paying revalidation
		// RPCs again is exactly the regression this gate exists to catch.
		if smoke > com+0.5 {
			msg := fmt.Sprintf("cache leaseSteadyRPCsPerRun/%s: smoke %.1f RPCs/run vs committed %.1f (ceiling +0.5)", sem, smoke, com)
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
			continue
		}
		fmt.Printf("  ok  cache leaseSteadyRPCsPerRun/%s: %.1f RPCs/run (committed %.1f)\n", sem, smoke, com)
	}

	var rpcCom, rpcSmoke rpcReport
	if err := loadTrendReport(committed.rpc, &rpcCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(rpcSmokePath, &rpcSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	for key, smoke := range rpcSmoke.Speedup {
		com, ok := rpcCom.Speedup[key]
		if !ok {
			skipped = append(skipped, "rpc speedup/"+key)
			continue
		}
		// budget=1 has no parallelism to lose; its ratio is ~1.0 noise.
		if strings.HasSuffix(key, "/budget=1") {
			continue
		}
		checks = append(checks, trendCheck{"rpc speedup/" + key, com, smoke, "ratio"})
	}
	for key, smoke := range rpcSmoke.CodecSpeedup {
		com, ok := rpcCom.CodecSpeedup[key]
		if !ok {
			skipped = append(skipped, "rpc codecSpeedup/"+key)
			continue
		}
		checks = append(checks, trendCheck{"rpc codecSpeedup/" + key, com, smoke, "ratio"})
	}

	// Observability overhead: percent of throughput lost with the
	// accounting plane on. The committed figures hover around zero (noise
	// in either direction), so the gate is an absolute ceiling, not a
	// ratio: smoke overhead must stay within a fixed band above the
	// committed value floored at zero. The band is wide because the off
	// baseline and each mode are independently timed batches — on a busy
	// CI box either can catch a load spike, swinging the relative figure
	// by tens of points. The gate exists to catch gross regressions (an
	// accounting plane that halves throughput), not single-digit drift;
	// negative smoke overhead is never a failure.
	var obsCom, obsSmoke obsReport
	if err := loadTrendReport(committed.obs, &obsCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(obsSmokePath, &obsSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	const obsBand = 35.0 // absolute percentage points over max(committed, 0)
	for mode, smoke := range obsSmoke.OverheadPct {
		com, ok := obsCom.OverheadPct[mode]
		if !ok {
			skipped = append(skipped, "obs overheadPct/"+mode)
			continue
		}
		ceiling := com
		if ceiling < 0 {
			ceiling = 0
		}
		ceiling += obsBand
		if smoke > ceiling {
			msg := fmt.Sprintf("obs overheadPct/%s: smoke %+.1f%% vs committed %+.1f%% (ceiling %+.1f%%)", mode, smoke, com, ceiling)
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
			continue
		}
		fmt.Printf("  ok  obs overheadPct/%s: %+.1f%% (committed %+.1f%%, ceiling %+.1f%%)\n", mode, smoke, com, ceiling)
	}
	// Structural obs gate, immune to timing noise: each instrumentation
	// mode must still do what it claims — no spans without a tracer, a
	// few under sampling, every run's worth under full tracing.
	for _, res := range obsSmoke.Results {
		var bad string
		switch res.Mode {
		case "off", "weakness":
			if res.SpansRetained != 0 {
				bad = fmt.Sprintf("retained %d spans with no tracer", res.SpansRetained)
			}
		case "sampled", "full":
			if res.SpansRetained == 0 {
				bad = "retained no spans with tracing on"
			}
		}
		if bad != "" {
			msg := fmt.Sprintf("obs spans/%s: %s", res.Mode, bad)
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
			continue
		}
		fmt.Printf("  ok  obs spans/%s: %d spans retained\n", res.Mode, res.SpansRetained)
	}

	// Listing scalability: degradation ratios (biggest size over smallest;
	// 1.0 = perfectly flat) must not blow past the committed figure. These
	// are inverted relative to speedups — smaller is better — so the gate
	// is a multiplicative ceiling at committed*(1+tol).
	var scaleCom, scaleSmoke scaleReport
	if err := loadTrendReport(committed.scale, &scaleCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(scaleSmokePath, &scaleSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	scaleRatios := []struct {
		name      string
		committed map[string]float64
		smoke     map[string]float64
	}{
		{"scale perElementRatio", scaleCom.PerElementRatio, scaleSmoke.PerElementRatio},
		{"scale firstElementRatio", scaleCom.FirstElementRatio, scaleSmoke.FirstElementRatio},
	}
	for _, sr := range scaleRatios {
		for mode, smoke := range sr.smoke {
			com, ok := sr.committed[mode]
			if !ok {
				skipped = append(skipped, sr.name+"/"+mode)
				continue
			}
			// The monolithic baseline is allowed to degrade — it exists to
			// be beaten; gating it would reward making the baseline better.
			if mode != "partitioned" {
				continue
			}
			if ceiling := com * (1 + tol); smoke > ceiling {
				msg := fmt.Sprintf("%s/%s: smoke %.2f vs committed %.2f (ceiling %.2f)", sr.name, mode, smoke, com, ceiling)
				failures = append(failures, msg)
				fmt.Printf("  FAIL %s\n", msg)
				continue
			}
			fmt.Printf("  ok  %s/%s: %.2f (committed %.2f)\n", sr.name, mode, smoke, com)
		}
	}

	for _, tc := range checks {
		if msg := tc.failure(tol); msg != "" {
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
		} else {
			fmt.Printf("  ok  %s: smoke %.2f (committed %.2f)\n", tc.name, tc.smoke, tc.committed)
		}
	}
	for _, s := range skipped {
		fmt.Printf("  skip %s: not present in both reports\n", s)
	}
	if len(failures) > 0 {
		return fmt.Errorf("trend gate FAILED:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("trend gate passed: no regressions beyond tolerance")
	return nil
}
