package main

// The -trend gate: the first slice of the ROADMAP trend-tracking item.
// It re-runs the quick cache and TCP sweeps, then compares the figures
// that are stable across sweep sizes against the committed
// BENCH_cache.json / BENCH_rpc.json and fails loudly on gross
// regressions. Absolute throughput is deliberately not compared — the
// smoke sweeps are smaller and the machines differ — only ratios and
// invariants that a correct implementation reproduces at any size:
// payload bytes elided by the warm cache, read RPCs per steady-state
// leased run, the multiplexing speedup, and the wirebin-over-gob step.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"weaksets/internal/sim"
)

// trendCheck is one gated comparison under the tolerance policy. Fractions compare
// by absolute difference; ratios compare multiplicatively, failing only
// below committed*(1-tol) — a smoke run being faster is never a failure.
type trendCheck struct {
	name      string
	committed float64
	smoke     float64
	kind      string // "fraction" (abs diff) or "ratio" (multiplicative floor)
}

func (tc trendCheck) failure(tol float64) string {
	switch tc.kind {
	case "fraction":
		// Fractions live on [0,1]; a fixed absolute band is the right
		// scale and symmetric (elision getting "better" than committed by
		// more than the band would be just as suspicious a measurement).
		const band = 0.15
		if d := tc.smoke - tc.committed; d > band || d < -band {
			return fmt.Sprintf("%s: smoke %.3f vs committed %.3f (band ±%.2f)", tc.name, tc.smoke, tc.committed, band)
		}
	case "ratio":
		if floor := tc.committed * (1 - tol); tc.smoke < floor {
			return fmt.Sprintf("%s: smoke %.2fx vs committed %.2fx (floor %.2fx)", tc.name, tc.smoke, tc.committed, floor)
		}
	}
	return ""
}

func loadTrendReport(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// runTrend runs the quick sweeps and gates them against the committed
// reports. tol is the multiplicative tolerance for ratio comparisons.
func runTrend(cacheCommitted, rpcCommitted string, tol float64, seed int64, rpcLat time.Duration) error {
	const (
		cacheSmokePath = "/tmp/BENCH_cache_trend.json"
		rpcSmokePath   = "/tmp/BENCH_rpc_trend.json"
	)
	fmt.Printf("trend gate: smoke sweeps vs %s, %s (ratio tolerance %.0f%%)\n\n", cacheCommitted, rpcCommitted, 100*tol)
	if err := runCacheSweep(cacheSmokePath, true, seed, sim.TimeScale(1)); err != nil {
		return fmt.Errorf("trend: cache smoke: %w", err)
	}
	fmt.Println()
	if err := runRPCSweep(rpcSmokePath, true, rpcLat); err != nil {
		return fmt.Errorf("trend: rpc smoke: %w", err)
	}
	fmt.Println()

	var checks []trendCheck
	var failures, skipped []string

	var cacheCom, cacheSmoke cacheReport
	if err := loadTrendReport(cacheCommitted, &cacheCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(cacheSmokePath, &cacheSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	for sem, com := range cacheCom.ByteReduction {
		smoke, ok := cacheSmoke.ByteReduction[sem]
		if !ok {
			skipped = append(skipped, "cache byteReduction/"+sem)
			continue
		}
		checks = append(checks, trendCheck{"cache byteReduction/" + sem, com, smoke, "fraction"})
	}
	for sem, com := range cacheCom.LeaseSteadyRPCsPerRun {
		smoke, ok := cacheSmoke.LeaseSteadyRPCsPerRun[sem]
		if !ok {
			skipped = append(skipped, "cache leaseSteadyRPCsPerRun/"+sem)
			continue
		}
		// The leased steady state must stay at (or within rounding of)
		// the committed zero: any run that starts paying revalidation
		// RPCs again is exactly the regression this gate exists to catch.
		if smoke > com+0.5 {
			msg := fmt.Sprintf("cache leaseSteadyRPCsPerRun/%s: smoke %.1f RPCs/run vs committed %.1f (ceiling +0.5)", sem, smoke, com)
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
			continue
		}
		fmt.Printf("  ok  cache leaseSteadyRPCsPerRun/%s: %.1f RPCs/run (committed %.1f)\n", sem, smoke, com)
	}

	var rpcCom, rpcSmoke rpcReport
	if err := loadTrendReport(rpcCommitted, &rpcCom); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	if err := loadTrendReport(rpcSmokePath, &rpcSmoke); err != nil {
		return fmt.Errorf("trend: %w", err)
	}
	for key, smoke := range rpcSmoke.Speedup {
		com, ok := rpcCom.Speedup[key]
		if !ok {
			skipped = append(skipped, "rpc speedup/"+key)
			continue
		}
		// budget=1 has no parallelism to lose; its ratio is ~1.0 noise.
		if strings.HasSuffix(key, "/budget=1") {
			continue
		}
		checks = append(checks, trendCheck{"rpc speedup/" + key, com, smoke, "ratio"})
	}
	for key, smoke := range rpcSmoke.CodecSpeedup {
		com, ok := rpcCom.CodecSpeedup[key]
		if !ok {
			skipped = append(skipped, "rpc codecSpeedup/"+key)
			continue
		}
		checks = append(checks, trendCheck{"rpc codecSpeedup/" + key, com, smoke, "ratio"})
	}

	for _, tc := range checks {
		if msg := tc.failure(tol); msg != "" {
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
		} else {
			fmt.Printf("  ok  %s: smoke %.2f (committed %.2f)\n", tc.name, tc.smoke, tc.committed)
		}
	}
	for _, s := range skipped {
		fmt.Printf("  skip %s: not present in both reports\n", s)
	}
	if len(failures) > 0 {
		return fmt.Errorf("trend gate FAILED:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("trend gate passed: no regressions beyond tolerance")
	return nil
}
