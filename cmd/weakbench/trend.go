package main

// The -trend gate: the ROADMAP trend-tracking item. It re-runs the quick
// store, iterator, cache, TCP, observability, and scale sweeps, then
// compares the figures that are stable across sweep sizes against the
// committed BENCH_*.json reports and fails loudly on gross regressions.
// Absolute throughput is deliberately not compared — the smoke sweeps are
// smaller and the machines differ — only ratios and invariants that a
// correct implementation reproduces at any size: the sharded store's
// advantage over the single-mutex engine, the batched fetch pipeline's
// speedup over per-object Gets, payload bytes elided by the warm cache,
// read RPCs per steady-state leased run, the multiplexing speedup, the
// wirebin-over-gob step, the observability overhead ceiling, and the
// partitioned listing's per-element and first-element degradation caps.
//
// Several sweeps time sub-millisecond real intervals, and on a small CI
// box a single load spike can sink whichever sweep it lands on. A sweep
// whose checks fail is therefore re-measured once from scratch and judged
// on the fresh numbers: a real regression reproduces, a scheduling hiccup
// does not.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"weaksets/internal/sim"
)

// trendCheck is one gated comparison under the tolerance policy. Fractions compare
// by absolute difference; ratios compare multiplicatively, failing only
// below committed*(1-tol) — a smoke run being faster is never a failure.
type trendCheck struct {
	name      string
	committed float64
	smoke     float64
	kind      string // "fraction" (abs diff) or "ratio" (multiplicative floor)
}

func (tc trendCheck) failure(tol float64) string {
	switch tc.kind {
	case "fraction":
		// Fractions live on [0,1]; a fixed absolute band is the right
		// scale and symmetric (elision getting "better" than committed by
		// more than the band would be just as suspicious a measurement).
		const band = 0.15
		if d := tc.smoke - tc.committed; d > band || d < -band {
			return fmt.Sprintf("%s: smoke %.3f vs committed %.3f (band ±%.2f)", tc.name, tc.smoke, tc.committed, band)
		}
	case "ratio":
		if floor := tc.committed * (1 - tol); tc.smoke < floor {
			return fmt.Sprintf("%s: smoke %.2fx vs committed %.2fx (floor %.2fx)", tc.name, tc.smoke, tc.committed, floor)
		}
	}
	return ""
}

// evalChecks judges a batch of comparisons, printing one line per check,
// and returns the failure messages.
func evalChecks(checks []trendCheck, tol float64) []string {
	var failures []string
	for _, tc := range checks {
		if msg := tc.failure(tol); msg != "" {
			failures = append(failures, msg)
			fmt.Printf("  FAIL %s\n", msg)
		} else {
			fmt.Printf("  ok  %s: smoke %.2f (committed %.2f)\n", tc.name, tc.smoke, tc.committed)
		}
	}
	return failures
}

// storeShardedRatio folds a contention sweep into sharded-over-locked
// throughput per worker count.
func storeShardedRatio(r storeReport) map[int]float64 {
	locked := map[int]float64{}
	for _, res := range r.Results {
		if res.Engine == "locked" {
			locked[res.Workers] = res.OpsPerSec
		}
	}
	out := map[int]float64{}
	for _, res := range r.Results {
		if res.Engine == "sharded" && locked[res.Workers] > 0 {
			out[res.Workers] = res.OpsPerSec / locked[res.Workers]
		}
	}
	return out
}

func loadTrendReport(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, into)
}

// trendPaths names the committed reports the gate compares against.
type trendPaths struct {
	store, iter, cache, rpc, obs, scale string
}

// trendGate couples one smoke sweep with the comparison of its report
// against the committed one. run re-measures into path; eval loads both
// reports, prints a line per check, and returns failures and skips.
type trendGate struct {
	name string
	path string
	run  func(path string) error
	eval func(path string) (failures, skipped []string, err error)
}

func (g trendGate) attempt() (failures, skipped []string, err error) {
	if err := g.run(g.path); err != nil {
		return nil, nil, fmt.Errorf("trend: %s smoke: %w", g.name, err)
	}
	fmt.Println()
	return g.eval(g.path)
}

// runTrend runs the quick sweeps and gates them against the committed
// reports. tol is the multiplicative tolerance for ratio comparisons;
// iterScale must match the scale the committed iter report was measured
// at, or the CPU-vs-WAN balance shifts and the speedups don't compare.
func runTrend(committed trendPaths, tol float64, seed int64, rpcLat time.Duration, iterScale sim.TimeScale) error {
	fmt.Printf("trend gate: smoke sweeps vs %s, %s, %s, %s, %s, %s (ratio tolerance %.0f%%)\n\n",
		committed.store, committed.iter, committed.cache, committed.rpc, committed.obs, committed.scale, 100*tol)

	gates := []trendGate{
		{
			// The iterator sweep runs first and un-trimmed: its
			// batched-over-baseline speedup grows with set size (a
			// 64-element quick run fits one batch and shows a fraction of
			// the pipelining win), so only same-size points compare — and
			// its timed intervals are sub-millisecond real time, so it gets
			// the quiet process before the allocation-heavy store smoke
			// churns the heap. The full sweep is cheap — it runs in scaled
			// virtual time.
			name: "iter",
			path: "/tmp/BENCH_iter_trend.json",
			run: func(path string) error {
				return runIterSweep(path, false, seed, iterScale)
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke iterReport
				if err := loadTrendReport(committed.iter, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				// Batched-over-per-object elements/sec per semantics and
				// size; same-size points compare directly.
				var checks []trendCheck
				var skipped []string
				for key, s := range smoke.Speedup {
					c, ok := com.Speedup[key]
					if !ok {
						skipped = append(skipped, "iter speedup/"+key)
						continue
					}
					checks = append(checks, trendCheck{"iter speedup/" + key, c, s, "ratio"})
				}
				return evalChecks(checks, tol), skipped, nil
			},
		},
		{
			name: "store",
			path: "/tmp/BENCH_store_trend.json",
			run: func(path string) error {
				return runStoreSweep(path, true)
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke storeReport
				if err := loadTrendReport(committed.store, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				// The sharded engine's throughput advantage over the
				// single-mutex baseline at each worker count. The ratio is
				// a per-op cost comparison, so it survives the smoke
				// sweep's smaller op count.
				var checks []trendCheck
				var skipped []string
				comRatio := storeShardedRatio(com)
				for workers, s := range storeShardedRatio(smoke) {
					name := fmt.Sprintf("store shardedSpeedup/workers=%d", workers)
					c, ok := comRatio[workers]
					if !ok {
						skipped = append(skipped, name)
						continue
					}
					checks = append(checks, trendCheck{name, c, s, "ratio"})
				}
				return evalChecks(checks, tol), skipped, nil
			},
		},
		{
			name: "cache",
			path: "/tmp/BENCH_cache_trend.json",
			run: func(path string) error {
				return runCacheSweep(path, true, seed, sim.TimeScale(1))
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke cacheReport
				if err := loadTrendReport(committed.cache, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				var checks []trendCheck
				var failures, skipped []string
				for sem, c := range com.ByteReduction {
					s, ok := smoke.ByteReduction[sem]
					if !ok {
						skipped = append(skipped, "cache byteReduction/"+sem)
						continue
					}
					checks = append(checks, trendCheck{"cache byteReduction/" + sem, c, s, "fraction"})
				}
				for sem, c := range com.LeaseSteadyRPCsPerRun {
					s, ok := smoke.LeaseSteadyRPCsPerRun[sem]
					if !ok {
						skipped = append(skipped, "cache leaseSteadyRPCsPerRun/"+sem)
						continue
					}
					// The leased steady state must stay at (or within
					// rounding of) the committed zero: any run that starts
					// paying revalidation RPCs again is exactly the
					// regression this gate exists to catch.
					if s > c+0.5 {
						msg := fmt.Sprintf("cache leaseSteadyRPCsPerRun/%s: smoke %.1f RPCs/run vs committed %.1f (ceiling +0.5)", sem, s, c)
						failures = append(failures, msg)
						fmt.Printf("  FAIL %s\n", msg)
						continue
					}
					fmt.Printf("  ok  cache leaseSteadyRPCsPerRun/%s: %.1f RPCs/run (committed %.1f)\n", sem, s, c)
				}
				return append(failures, evalChecks(checks, tol)...), skipped, nil
			},
		},
		{
			name: "rpc",
			path: "/tmp/BENCH_rpc_trend.json",
			run: func(path string) error {
				return runRPCSweep(path, true, rpcLat)
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke rpcReport
				if err := loadTrendReport(committed.rpc, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				var checks []trendCheck
				var skipped []string
				for key, s := range smoke.Speedup {
					c, ok := com.Speedup[key]
					if !ok {
						skipped = append(skipped, "rpc speedup/"+key)
						continue
					}
					// budget=1 has no parallelism to lose; its ratio is
					// ~1.0 noise.
					if strings.HasSuffix(key, "/budget=1") {
						continue
					}
					checks = append(checks, trendCheck{"rpc speedup/" + key, c, s, "ratio"})
				}
				for key, s := range smoke.CodecSpeedup {
					c, ok := com.CodecSpeedup[key]
					if !ok {
						skipped = append(skipped, "rpc codecSpeedup/"+key)
						continue
					}
					checks = append(checks, trendCheck{"rpc codecSpeedup/" + key, c, s, "ratio"})
				}
				return evalChecks(checks, tol), skipped, nil
			},
		},
		{
			name: "obs",
			path: "/tmp/BENCH_obs_trend.json",
			run: func(path string) error {
				return runObsSweep(path, true, seed)
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke obsReport
				if err := loadTrendReport(committed.obs, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				// Observability overhead: percent of throughput lost with
				// the accounting plane on. The committed figures hover
				// around zero (noise in either direction), so the gate is
				// an absolute ceiling, not a ratio: smoke overhead must
				// stay within a fixed band above the committed value
				// floored at zero. The band is wide because the off
				// baseline and each mode are independently timed batches —
				// on a busy CI box either can catch a load spike, swinging
				// the relative figure by tens of points. The gate exists to
				// catch gross regressions (an accounting plane that halves
				// throughput), not single-digit drift; negative smoke
				// overhead is never a failure.
				const obsBand = 35.0 // absolute percentage points over max(committed, 0)
				var failures, skipped []string
				for mode, s := range smoke.OverheadPct {
					c, ok := com.OverheadPct[mode]
					if !ok {
						skipped = append(skipped, "obs overheadPct/"+mode)
						continue
					}
					ceiling := c
					if ceiling < 0 {
						ceiling = 0
					}
					ceiling += obsBand
					if s > ceiling {
						msg := fmt.Sprintf("obs overheadPct/%s: smoke %+.1f%% vs committed %+.1f%% (ceiling %+.1f%%)", mode, s, c, ceiling)
						failures = append(failures, msg)
						fmt.Printf("  FAIL %s\n", msg)
						continue
					}
					fmt.Printf("  ok  obs overheadPct/%s: %+.1f%% (committed %+.1f%%, ceiling %+.1f%%)\n", mode, s, c, ceiling)
				}
				// Structural obs gate, immune to timing noise: each
				// instrumentation mode must still do what it claims — no
				// spans without a tracer, a few under sampling, every run's
				// worth under full tracing.
				for _, res := range smoke.Results {
					var bad string
					switch res.Mode {
					case "off", "weakness":
						if res.SpansRetained != 0 {
							bad = fmt.Sprintf("retained %d spans with no tracer", res.SpansRetained)
						}
					case "sampled", "full":
						if res.SpansRetained == 0 {
							bad = "retained no spans with tracing on"
						}
					}
					if bad != "" {
						msg := fmt.Sprintf("obs spans/%s: %s", res.Mode, bad)
						failures = append(failures, msg)
						fmt.Printf("  FAIL %s\n", msg)
						continue
					}
					fmt.Printf("  ok  obs spans/%s: %d spans retained\n", res.Mode, res.SpansRetained)
				}
				return failures, skipped, nil
			},
		},
		{
			name: "scale",
			path: "/tmp/BENCH_scale_trend.json",
			run: func(path string) error {
				return runScaleSweep(path, true, seed)
			},
			eval: func(path string) ([]string, []string, error) {
				var com, smoke scaleReport
				if err := loadTrendReport(committed.scale, &com); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				if err := loadTrendReport(path, &smoke); err != nil {
					return nil, nil, fmt.Errorf("trend: %w", err)
				}
				// Listing scalability: degradation ratios (biggest size
				// over smallest; 1.0 = perfectly flat) must not blow past
				// the committed figure. These are inverted relative to
				// speedups — smaller is better — so the gate is a
				// multiplicative ceiling at committed*(1+tol).
				scaleRatios := []struct {
					name      string
					committed map[string]float64
					smoke     map[string]float64
				}{
					{"scale perElementRatio", com.PerElementRatio, smoke.PerElementRatio},
					{"scale firstElementRatio", com.FirstElementRatio, smoke.FirstElementRatio},
				}
				var failures, skipped []string
				for _, sr := range scaleRatios {
					for mode, s := range sr.smoke {
						c, ok := sr.committed[mode]
						if !ok {
							skipped = append(skipped, sr.name+"/"+mode)
							continue
						}
						// The monolithic baseline is allowed to degrade —
						// it exists to be beaten; gating it would reward
						// making the baseline better.
						if mode != "partitioned" {
							continue
						}
						if ceiling := c * (1 + tol); s > ceiling {
							msg := fmt.Sprintf("%s/%s: smoke %.2f vs committed %.2f (ceiling %.2f)", sr.name, mode, s, c, ceiling)
							failures = append(failures, msg)
							fmt.Printf("  FAIL %s\n", msg)
							continue
						}
						fmt.Printf("  ok  %s/%s: %.2f (committed %.2f)\n", sr.name, mode, s, c)
					}
				}
				return failures, skipped, nil
			},
		},
	}

	var failures, skipped []string
	for _, g := range gates {
		fail, skip, err := g.attempt()
		if err != nil {
			return err
		}
		if len(fail) > 0 {
			fmt.Printf("\n  %s: %d check(s) failed — re-measuring once to rule out host noise\n\n", g.name, len(fail))
			if fail, skip, err = g.attempt(); err != nil {
				return err
			}
		}
		failures = append(failures, fail...)
		skipped = append(skipped, skip...)
		fmt.Println()
	}
	for _, s := range skipped {
		fmt.Printf("  skip %s: not present in both reports\n", s)
	}
	if len(failures) > 0 {
		return fmt.Errorf("trend gate FAILED:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("trend gate passed: no regressions beyond tolerance")
	return nil
}
