package main

// The -replica sweep: what replica-parallel reads buy and what they
// cost in staleness. Each level replicates one collection across R
// nodes, caps every server's concurrent handler slots (so "one hot
// node" versus "R replicas" is a capacity fight, not a free lunch), and
// hammers it with concurrent grow-only readers under a churn writer:
// opening listings scatter partition streams across the live replicas
// and element batches round-robin the near-closest ones. Throughput and
// time-to-first-element go up; the replicas' staleness — ReplicaSkew
// version steps, GhostAge since the last anti-entropy push — is read
// back from the weakness registry and reported next to the win, never
// hidden. A final kill-one-replica phase crashes a replica mid-sweep
// and shows reads completing from the survivors.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

// replicaPoint is one replication level of the -replica sweep.
type replicaPoint struct {
	Replicas int           `json:"replicas"`
	Runs     int64         `json:"runs"`
	Yielded  int64         `json:"yielded"`
	Elapsed  time.Duration `json:"elapsedNs"`
	// Throughput axis.
	RunsPerSec  float64 `json:"runsPerSec"`
	ElemsPerSec float64 `json:"elemsPerSec"`
	// Time-to-first-element quantiles across every run at this level.
	TTFEP50 time.Duration `json:"ttfeP50Ns"`
	TTFEP99 time.Duration `json:"ttfeP99Ns"`
	// Weakness axis: what serving from replicas cost in staleness.
	ReplicaServed int64         `json:"replicaServed"`
	ReplicaSkew   int64         `json:"replicaSkew"`
	MaxGhostAge   time.Duration `json:"maxGhostAgeNs"`
	Writes        int64         `json:"writes"`
}

// replicaKill is the kill-one-replica phase: reads must keep completing
// from the survivors, with the staleness they serve reported.
type replicaKill struct {
	Killed        string        `json:"killed"`
	Runs          int64         `json:"runs"`
	Completed     int64         `json:"completed"`
	Failed        int64         `json:"failed"`
	Yielded       int64         `json:"yielded"`
	Elapsed       time.Duration `json:"elapsedNs"`
	RunsPerSec    float64       `json:"runsPerSec"`
	ElemsPerSec   float64       `json:"elemsPerSec"`
	ReplicaServed int64         `json:"replicaServed"`
	ReplicaSkew   int64         `json:"replicaSkew"`
	MaxGhostAge   time.Duration `json:"maxGhostAgeNs"`
	// HandoffEvents counts the home's EvHandoff journal records: the
	// hinted-handoff bookkeeping noticing the dead replica.
	HandoffEvents int64 `json:"handoffEvents"`
}

// replicaReport is the BENCH_replica.json document. Speedup maps
// "replicas=N" to this level's elements/sec over the single-home
// baseline.
type replicaReport struct {
	Meta          benchMeta          `json:"meta"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Elements      int                `json:"elements"`
	Readers       int                `json:"readers"`
	RunsPerReader int                `json:"runsPerReader"`
	ServiceLimit  int                `json:"serviceLimit"`
	ServiceTime   time.Duration      `json:"serviceTimeNs"`
	ReplicaCounts []int              `json:"replicaCounts"`
	Seed          int64              `json:"seed"`
	Results       []replicaPoint     `json:"results"`
	Speedup       map[string]float64 `json:"speedup"`
	Kill          *replicaKill       `json:"kill,omitempty"`
}

// runReplicaSweep drives the sweep: one fresh cluster per replication
// level, the kill phase piggybacking on the highest level's cluster.
func runReplicaSweep(jsonPath string, quick bool, seed int64) error {
	elements, readers, runsPerReader := 64, 16, 24
	// Each node is a small server with period-appropriate cost per
	// operation: two handler slots, tens of virtual milliseconds of
	// service time per call (a disk-bound storage node of the paper's
	// era, against 10ms one-way links). At R=1 every listing partition
	// and element batch queues on the home's two slots; replication's win
	// is the extra slots it buys.
	const (
		serviceLimit = 2
		serviceTime  = 200 * time.Millisecond // virtual, scaled like link latency
	)
	counts := []int{1, 2, 3}
	if quick {
		elements, readers, runsPerReader = 48, 8, 4
	}

	report := replicaReport{
		Meta:          inprocMeta(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Elements:      elements,
		Readers:       readers,
		RunsPerReader: runsPerReader,
		ServiceLimit:  serviceLimit,
		ServiceTime:   serviceTime,
		ReplicaCounts: counts,
		Seed:          seed,
		Speedup:       map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Replica-parallel reads: %d-element grow-only Collect under churn, %d readers, %d handler slots/node",
			elements, readers, serviceLimit),
		"replicas", "runs/sec", "elems/sec", "ttfe p50", "ttfe p99", "replica-served", "skew", "ghost-age", "speedup")

	base := 0.0
	for _, r := range counts {
		point, kill, err := runReplicaLevel(r, elements, readers, runsPerReader, serviceLimit, serviceTime, seed, r == counts[len(counts)-1])
		if err != nil {
			return fmt.Errorf("replica sweep: replicas=%d: %w", r, err)
		}
		report.Results = append(report.Results, point)
		report.Kill = kill

		speedup := "-"
		if r == 1 {
			base = point.ElemsPerSec
		} else if base > 0 {
			ratio := point.ElemsPerSec / base
			report.Speedup[fmt.Sprintf("replicas=%d", r)] = ratio
			speedup = fmt.Sprintf("%.1fx", ratio)
		}
		table.AddRow(
			fmt.Sprintf("%d", r),
			fmt.Sprintf("%.1f", point.RunsPerSec),
			fmt.Sprintf("%.0f", point.ElemsPerSec),
			metrics.FmtDur(point.TTFEP50),
			metrics.FmtDur(point.TTFEP99),
			fmt.Sprintf("%d", point.ReplicaServed),
			fmt.Sprintf("%d", point.ReplicaSkew),
			metrics.FmtDur(point.MaxGhostAge),
			speedup,
		)
	}
	table.Render(os.Stdout)

	if k := report.Kill; k != nil {
		fmt.Printf("kill phase: crashed %s; %d/%d runs completed from survivors (%.0f elems/sec, skew %d, ghost-age %s, %d handoff events)\n",
			k.Killed, k.Completed, k.Runs, k.ElemsPerSec, k.ReplicaSkew, metrics.FmtDur(k.MaxGhostAge), k.HandoffEvents)
		if k.Failed > 0 {
			return fmt.Errorf("replica sweep: kill phase: %d of %d runs failed — survivors did not carry the read load", k.Failed, k.Runs)
		}
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("replica sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("replica sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replica sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d levels)\n", jsonPath, len(report.Results))
	return nil
}

// runReplicaLevel builds a fresh cluster, replicates the collection
// across r nodes, waits for the replicas to converge, and times the
// reader pool under churn. With doKill it then crashes one non-home
// replica and runs a second read phase against the survivors.
func runReplicaLevel(r, elements, readers, runs, serviceLimit int, serviceTime time.Duration, seed int64, doKill bool) (replicaPoint, *replicaKill, error) {
	ctx := context.Background()
	// The scale must be explicit: a zero scale records latencies without
	// sleeping them, so neither the 10ms links nor the per-call service
	// cost would occupy anything and the capacity fight would be fiction.
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: seed, Scale: sim.DefaultScale})
	if err != nil {
		return replicaPoint{}, nil, err
	}
	defer c.Close()
	journal := obs.NewJournal(obs.DefaultJournalCapacity)
	c.UseJournal(journal)

	const coll = "replicated"
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
		return replicaPoint{}, nil, err
	}
	// Objects live on the home node so anti-entropy ships their data to
	// the replicas (member refs pointing elsewhere travel by reference).
	for i := 0; i < elements; i++ {
		ref, err := c.Client.Put(ctx, cluster.DirNode, repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
			Data: make([]byte, 256),
		})
		if err == nil {
			err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
		}
		if err != nil {
			return replicaPoint{}, nil, fmt.Errorf("populate: %w", err)
		}
	}

	nodes, err := c.Replicate(coll, r)
	if err != nil {
		return replicaPoint{}, nil, err
	}
	c.Servers[cluster.DirNode].SetAntiEntropy(100 * time.Millisecond)
	if err := waitReplicaConvergence(ctx, c, coll, nodes); err != nil {
		return replicaPoint{}, nil, err
	}

	// Every server gets the same slot budget and the same per-call
	// service cost: at R=1 all reads queue on the home's slots; at R=3
	// the same workload spreads across three nodes' slots. This is the
	// contention replication relieves.
	for _, node := range append([]netsim.NodeID{cluster.DirNode}, c.Storage...) {
		c.Bus.SetServiceLimit(node, serviceLimit)
		c.Bus.SetServiceTime(node, serviceTime)
	}

	// The churn writer: a steady stream of adds through the home, each
	// commit kicking an anti-entropy round, so the listing version never
	// stops moving and the replicas are perpetually a little behind —
	// the staleness the sweep is pricing. Adds only: grow-only readers
	// must reach every member they listed, so removing mid-run would
	// measure ghost semantics, not replica routing.
	var (
		writes    atomic.Int64
		churnStop = make(chan struct{})
		churnDone = make(chan struct{})
	)
	// The writer is its own process in the model, so it gets its own
	// client: a shared client would couple its mutation epoch to the
	// readers' read-your-writes accounting, and every write would
	// invalidate every in-flight prefetch batch in every reader.
	churnClient := c.ClientAt(cluster.HomeNode)
	go func() {
		defer close(churnDone)
		for i := 0; ; i++ {
			select {
			case <-churnStop:
				return
			default:
			}
			ref, err := churnClient.Put(ctx, cluster.DirNode, repo.Object{
				ID:   repo.ObjectID(fmt.Sprintf("churn%06d", i)),
				Data: make([]byte, 256),
			})
			if err == nil {
				err = churnClient.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err != nil {
				return
			}
			writes.Add(1)
			time.Sleep(20 * time.Millisecond)
		}
	}()
	stopChurn := func() {
		select {
		case <-churnDone:
		default:
			close(churnStop)
			<-churnDone
		}
	}
	defer stopChurn()

	weakness := obs.NewRegistry()
	phase, err := runReplicaPhase(ctx, c, coll, nodes, readers, runs, weakness)
	if err != nil {
		return replicaPoint{}, nil, err
	}

	point := replicaPoint{
		Replicas: r,
		Runs:     phase.runs,
		Yielded:  phase.yielded,
		Elapsed:  phase.elapsed,
		TTFEP50:  phase.ttfeP50,
		TTFEP99:  phase.ttfeP99,
		Writes:   writes.Load(),
	}
	if s := phase.elapsed.Seconds(); s > 0 {
		point.RunsPerSec = float64(phase.runs) / s
		point.ElemsPerSec = float64(phase.yielded) / s
	}
	point.ReplicaServed, point.ReplicaSkew, point.MaxGhostAge = weaknessReplicaFigures(weakness, coll)

	if !doKill || r < 2 {
		return point, nil, nil
	}

	// Kill phase: crash the farthest replica and read again. The routers
	// time out on it once, mark it dead, and the survivors (home
	// included) carry every remaining partition — runs complete, the
	// staleness they served is reported.
	victim := nodes[len(nodes)-1]
	c.Net.Crash(victim)
	killWeakness := obs.NewRegistry()
	killRuns := runs / 2
	if killRuns < 3 {
		killRuns = 3
	}
	killPhase, err := runReplicaPhase(ctx, c, coll, nodes, readers, killRuns, killWeakness)
	if err != nil {
		// Reads failing outright is exactly what this phase exists to
		// catch; report it as data, not as a sweep crash.
		killPhase.failed++
	}
	stopChurn()

	kill := &replicaKill{
		Killed:    string(victim),
		Runs:      killPhase.runs + killPhase.failed,
		Completed: killPhase.runs,
		Failed:    killPhase.failed,
		Yielded:   killPhase.yielded,
		Elapsed:   killPhase.elapsed,
	}
	if s := killPhase.elapsed.Seconds(); s > 0 {
		kill.RunsPerSec = float64(killPhase.runs) / s
		kill.ElemsPerSec = float64(killPhase.yielded) / s
	}
	kill.ReplicaServed, kill.ReplicaSkew, kill.MaxGhostAge = weaknessReplicaFigures(killWeakness, coll)
	kill.HandoffEvents = int64(len(journal.Events(obs.EventFilter{Type: obs.EvHandoff})))
	return point, kill, nil
}

// replicaPhaseResult is one timed read phase's raw counters.
type replicaPhaseResult struct {
	runs    int64
	failed  int64
	yielded int64
	elapsed time.Duration
	ttfeP50 time.Duration
	ttfeP99 time.Duration
}

// runReplicaPhase times `readers` concurrent grow-only reader loops of
// `runs` Collects each, recording per-run time-to-first-element. Every
// reader builds its own Set (its own router, probes and hedges) — the
// level's weakness lands in reg.
func runReplicaPhase(ctx context.Context, c *cluster.Cluster, coll string, nodes []netsim.NodeID, readers, runs int, reg *obs.Registry) (replicaPhaseResult, error) {
	var (
		wg      sync.WaitGroup
		yielded atomic.Int64
		done    atomic.Int64
		mu      sync.Mutex
		ttfes   []time.Duration
		readErr error
	)
	start := time.Now()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// GrowOnly (Fig. 5) matches the add-only churn exactly: every
			// invocation consults current membership, so each yield is one
			// listIfNew against the closest live replica plus its share of
			// routed element batches — the per-read load replication spreads.
			set, err := core.NewSet(c.ClientAt(cluster.HomeNode), cluster.DirNode, coll, core.Options{
				Semantics: core.GrowOnly,
				Weakness:  reg,
				Replicas:  core.ReplicaConfig{Nodes: nodes},
				// Small uncached batches keep element fetches — the part of
				// the read that genuinely spreads across replicas — the
				// dominant load, so the sweep prices replica capacity, not
				// the client cache.
				Fetch: core.FetchOptions{Batch: 16, NoCache: true},
			})
			for r := 0; err == nil && r < runs; r++ {
				var n int
				var ttfe time.Duration
				n, ttfe, err = collectTimed(ctx, set)
				if err != nil {
					break
				}
				yielded.Add(int64(n))
				done.Add(1)
				mu.Lock()
				ttfes = append(ttfes, ttfe)
				mu.Unlock()
			}
			if err != nil {
				mu.Lock()
				if readErr == nil {
					readErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res := replicaPhaseResult{
		runs:    done.Load(),
		yielded: yielded.Load(),
		elapsed: time.Since(start),
	}
	res.ttfeP50, res.ttfeP99 = durQuantiles(ttfes)
	return res, readErr
}

// collectTimed is one full Elements run, returning the yield count and
// the wall time to the first element.
func collectTimed(ctx context.Context, set *core.Set) (int, time.Duration, error) {
	start := time.Now()
	it, err := set.Elements(ctx)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = it.Close(context.Background()) }()
	n := 0
	var ttfe time.Duration
	for it.Next(ctx) {
		if n == 0 {
			ttfe = time.Since(start)
		}
		n++
	}
	return n, ttfe, it.Err()
}

// waitReplicaConvergence polls each replica's anti-entropy digest until
// its version vector matches the home's — the populated membership (and
// its object data) has landed everywhere before the clock starts.
func waitReplicaConvergence(ctx context.Context, c *cluster.Cluster, coll string, nodes []netsim.NodeID) error {
	deadline := time.Now().Add(15 * time.Second)
	for {
		home, err := c.Client.Digest(ctx, nodes[0], coll)
		if err != nil {
			return fmt.Errorf("convergence: home digest: %w", err)
		}
		settled := true
		for _, node := range nodes[1:] {
			d, err := c.Client.Digest(ctx, node, coll)
			if err != nil || d.Partitions != home.Partitions {
				settled = false
				break
			}
			for i, v := range home.Versions {
				if i >= len(d.Versions) || d.Versions[i] < v {
					settled = false
					break
				}
			}
			if !settled {
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("convergence: replicas still behind the home after 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// weaknessReplicaFigures folds one registry's replica staleness
// accounting for coll.
func weaknessReplicaFigures(reg *obs.Registry, coll string) (served, skew int64, ghostAge time.Duration) {
	for _, cw := range reg.Snapshot() {
		if cw.Collection == coll {
			return cw.ReplicaServed, cw.ReplicaSkew, cw.MaxGhostAge
		}
	}
	return 0, 0, 0
}

// durQuantiles returns the p50 and p99 of a sample set.
func durQuantiles(ds []time.Duration) (p50, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(ds)-1))
		return ds[i]
	}
	return at(0.50), at(0.99)
}
