package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/store"
)

// cacheResult is one row of the -cache sweep: one Collect over a
// populated collection with the element cache in a known state.
type cacheResult struct {
	Semantics string `json:"semantics"`
	Elements  int    `json:"elements"`
	// Phase: "cold" (empty cache), "warm" (previous run populated it, set
	// unchanged), or "mutated" (a remote writer touched ~10% of the
	// objects and the membership between runs).
	Phase        string        `json:"phase"`
	Yielded      int           `json:"yielded"`
	Virtual      time.Duration `json:"virtualNs"`
	ElemsPerSec  float64       `json:"elemsPerSec"` // per virtual second
	GetRPCs      int64         `json:"getRPCs"`
	BatchRPCs    int64         `json:"getBatchRPCs"`
	BytesShipped int64         `json:"bytesShipped"` // server-side payload bytes
	NotModified  int64         `json:"notModified"`
	CacheHits    int64         `json:"cacheHits"`
	Validated    int64         `json:"cacheValidatedHits"`
}

// cacheReport is the BENCH_cache.json document. Speedup maps a semantics
// to warm-over-cold elements/sec; ByteReduction maps a semantics to the
// fraction of cold-run payload bytes the warm run kept off the wire.
type cacheReport struct {
	Meta          benchMeta          `json:"meta"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Engine        string             `json:"engine"`
	StorageNodes  int                `json:"storageNodes"`
	Seed          int64              `json:"seed"`
	Scale         float64            `json:"scale"`
	LatencyMs     float64            `json:"oneWayLatencyMs"`
	ObjectBytes   int                `json:"objectBytes"`
	Results       []cacheResult      `json:"results"`
	Speedup       map[string]float64 `json:"speedup"`
	ByteReduction map[string]float64 `json:"byteReduction"`
}

// cacheBatchTotals sums the engine batch counters across the storage
// nodes — the server-side ground truth for what conditional fetching
// shipped versus elided.
func cacheBatchTotals(c *cluster.Cluster) store.BatchStats {
	var tot store.BatchStats
	for _, srv := range c.Servers {
		b := srv.Store().Stats().Batch
		tot.NotModified += b.NotModified
		tot.BytesShipped += b.BytesShipped
		tot.BytesSaved += b.BytesSaved
	}
	return tot
}

// runCacheSweep measures the version-validated element cache on the
// elements hot path: a cold run (empty cache), a warm run over the
// unchanged set (snapshot runs serve with no fetch RPC at all;
// current-state runs revalidate and get NotModified back), and a run
// after a remote writer mutated ~10% of the objects plus the membership
// (only the changed objects re-ship). Times are virtual, so the latency
// the cache removes is visible; payload bytes come from the storage
// engines themselves.
func runCacheSweep(jsonPath string, quick bool, seed int64, scale sim.TimeScale) error {
	size := 1000
	if quick {
		size = 64
	}
	const (
		storageNodes = 4
		latency      = 25 * time.Millisecond
		objectBytes  = 256
	)
	// The cache pays off in the latency-bound regime the paper targets
	// (mobile clients on a WAN), so the fetch pipe is kept narrow — small
	// batches, one in flight per node — and the clock runs at scale 1 so
	// per-element CPU does not get inflated into the virtual times the
	// speedup is computed from.
	fetch := core.FetchOptions{Batch: 8, Inflight: 1}
	if scale == 0 {
		scale = 1
	}

	report := cacheReport{
		Meta:          inprocMeta(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		StorageNodes:  storageNodes,
		Seed:          seed,
		Scale:         float64(scale),
		LatencyMs:     float64(latency) / float64(time.Millisecond),
		ObjectBytes:   objectBytes,
		Speedup:       map[string]float64{},
		ByteReduction: map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Element cache: %d x %dB elements, %d storage nodes, %v one-way",
			size, objectBytes, storageNodes, latency),
		"semantics", "phase", "virtual time", "elems/sec", "GetBatch", "notMod", "shipped B", "hits", "validated")

	ctx := context.Background()
	for _, sem := range []core.Semantics{core.Snapshot, core.GrowOnly} {
		c, err := cluster.New(cluster.Config{
			StorageNodes: storageNodes,
			Seed:         seed,
			Scale:        scale,
			Latency:      sim.Fixed(latency),
		})
		if err != nil {
			return fmt.Errorf("cache sweep: %w", err)
		}
		coll := "cache"
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
			c.Close()
			return fmt.Errorf("cache sweep: %w", err)
		}
		refs := make([]repo.Ref, size)
		for i := 0; i < size; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, objectBytes)}
			ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
			if err == nil {
				err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: populate: %w", err)
			}
			refs[i] = ref
		}
		if report.Engine == "" {
			es, err := c.Client.StoreStats(ctx, cluster.DirNode)
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %w", err)
			}
			report.Engine = es.Engine
		}

		cache := repo.NewCache(2 * size)
		c.Client.UseCache(cache)
		set, err := core.NewSet(c.Client, cluster.DirNode, coll, core.Options{Semantics: sem, Fetch: fetch})
		if err != nil {
			c.Close()
			return fmt.Errorf("cache sweep: %w", err)
		}
		// The mutating phase writes through a second client with no cache
		// attached: a genuinely remote writer our cache cannot see.
		mutator := c.ClientAt(cluster.DirNode)

		var coldPerSec, coldShipped float64
		for run, phase := range []string{"cold", "warm", "mutated"} {
			if phase == "mutated" {
				for i := 0; i < size/10; i++ {
					victim := refs[i*10]
					if _, err := mutator.Put(ctx, victim.Node, repo.Object{
						ID: victim.ID, Data: make([]byte, objectBytes),
					}); err != nil {
						c.Close()
						return fmt.Errorf("cache sweep: mutate: %w", err)
					}
				}
				// Move the membership too, so snapshot runs pin a newer
				// listing and must revalidate rather than serve blind.
				obj := repo.Object{ID: "late", Data: make([]byte, objectBytes)}
				ref, err := mutator.Put(ctx, c.StorageFor(0), obj)
				if err == nil {
					err = mutator.Add(ctx, cluster.DirNode, coll, ref)
				}
				if err != nil {
					c.Close()
					return fmt.Errorf("cache sweep: mutate: %w", err)
				}
			}

			gets := c.Bus.MethodCalls(repo.MethodGet)
			batches := c.Bus.MethodCalls(repo.MethodGetBatch)
			beforeB := cacheBatchTotals(c)
			beforeC := cache.Stats()
			elapsed := scale.Stopwatch()
			elems, err := set.Collect(ctx)
			virtual := elapsed()
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %s/%s: %w", sem, phase, err)
			}
			afterB := cacheBatchTotals(c)
			afterC := cache.Stats()
			res := cacheResult{
				Semantics:    sem.String(),
				Elements:     size,
				Phase:        phase,
				Yielded:      len(elems),
				Virtual:      virtual,
				GetRPCs:      c.Bus.MethodCalls(repo.MethodGet) - gets,
				BatchRPCs:    c.Bus.MethodCalls(repo.MethodGetBatch) - batches,
				BytesShipped: afterB.BytesShipped - beforeB.BytesShipped,
				NotModified:  afterB.NotModified - beforeB.NotModified,
				CacheHits:    afterC.Hits - beforeC.Hits,
				Validated:    afterC.ValidatedHits - beforeC.ValidatedHits,
			}
			if virtual > 0 {
				res.ElemsPerSec = float64(res.Yielded) / virtual.Seconds()
			}
			report.Results = append(report.Results, res)

			switch run {
			case 0:
				coldPerSec = res.ElemsPerSec
				coldShipped = float64(res.BytesShipped)
			case 1:
				if coldPerSec > 0 {
					report.Speedup[sem.String()] = res.ElemsPerSec / coldPerSec
				}
				if coldShipped > 0 {
					report.ByteReduction[sem.String()] = 1 - float64(res.BytesShipped)/coldShipped
				}
			}
			table.AddRow(
				sem.String(),
				phase,
				virtual.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", res.ElemsPerSec),
				fmt.Sprintf("%d", res.BatchRPCs),
				fmt.Sprintf("%d", res.NotModified),
				fmt.Sprintf("%d", res.BytesShipped),
				fmt.Sprintf("%d", res.CacheHits),
				fmt.Sprintf("%d", res.Validated),
			)
		}
		c.Close()
	}
	table.Render(os.Stdout)
	for _, sem := range []string{"snapshot", "grow-only"} {
		fmt.Printf("%s: warm %.1fx cold, %.1f%% payload bytes elided\n",
			sem, report.Speedup[sem], 100*report.ByteReduction[sem])
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("cache sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("cache sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cache sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}
