package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/store"
)

// cacheResult is one row of the -cache sweep: one or more successive
// Collects over a populated collection with the element cache in a known
// state.
type cacheResult struct {
	Semantics string `json:"semantics"`
	Elements  int    `json:"elements"`
	// Phase: "cold" (empty cache), "warm" (previous run populated it, set
	// unchanged), "mutated" (a remote writer touched ~10% of the objects
	// and the membership between runs), "leased" (steady state under a
	// held lease, quiescent writer), or "lease-lost" (lease stopped, back
	// on the conditional-revalidate path).
	Phase string `json:"phase"`
	// Runs is how many successive Collects the row aggregates; the
	// per-run figures below are averaged over it.
	Runs           int           `json:"runs"`
	Yielded        int           `json:"yielded"`
	Virtual        time.Duration `json:"virtualNs"`   // per run
	ElemsPerSec    float64       `json:"elemsPerSec"` // per virtual second
	GetRPCs        int64         `json:"getRPCs"`
	BatchRPCs      int64         `json:"getBatchRPCs"`
	ListRPCs       int64         `json:"listRPCs"` // List + ListParts
	ReadRPCsPerRun float64       `json:"readRPCsPerRun"`
	BytesShipped   int64         `json:"bytesShipped"` // server-side payload bytes
	NotModified    int64         `json:"notModified"`
	CacheHits      int64         `json:"cacheHits"`
	Validated      int64         `json:"cacheValidatedHits"`
}

// cacheReport is the BENCH_cache.json document. Speedup maps a semantics
// to warm-over-cold elements/sec; ByteReduction maps a semantics to the
// fraction of cold-run payload bytes the warm run kept off the wire;
// LeaseSteadyRPCsPerRun maps a current-state semantics to read RPCs per
// steady-state run under a held lease — the number leases drive to 0.
type cacheReport struct {
	Meta                  benchMeta          `json:"meta"`
	GOMAXPROCS            int                `json:"gomaxprocs"`
	Engine                string             `json:"engine"`
	StorageNodes          int                `json:"storageNodes"`
	Seed                  int64              `json:"seed"`
	Scale                 float64            `json:"scale"`
	LatencyMs             float64            `json:"oneWayLatencyMs"`
	ObjectBytes           int                `json:"objectBytes"`
	Results               []cacheResult      `json:"results"`
	Speedup               map[string]float64 `json:"speedup"`
	ByteReduction         map[string]float64 `json:"byteReduction"`
	LeaseSteadyRPCsPerRun map[string]float64 `json:"leaseSteadyRPCsPerRun"`
}

// measureRuns drives runs successive Collects and returns the aggregated
// row: counters are deltas over the whole burst, virtual time and the
// RPC rate are per run.
func measureRuns(ctx context.Context, c *cluster.Cluster, cache *repo.Cache, set *core.Set, scale sim.TimeScale, sem core.Semantics, phase string, runs, size int) (cacheResult, error) {
	gets := c.Bus.MethodCalls(repo.MethodGet)
	batches := c.Bus.MethodCalls(repo.MethodGetBatch)
	lists := c.Bus.MethodCalls(repo.MethodList) + c.Bus.MethodCalls(repo.MethodListParts)
	beforeB := cacheBatchTotals(c)
	beforeC := cache.Stats()
	elapsed := scale.Stopwatch()
	yielded := 0
	for r := 0; r < runs; r++ {
		elems, err := set.Collect(ctx)
		if err != nil {
			return cacheResult{}, fmt.Errorf("%s/%s run %d: %w", sem, phase, r, err)
		}
		yielded = len(elems)
	}
	virtual := elapsed() / time.Duration(runs)
	afterB := cacheBatchTotals(c)
	afterC := cache.Stats()
	res := cacheResult{
		Semantics:    sem.String(),
		Elements:     size,
		Phase:        phase,
		Runs:         runs,
		Yielded:      yielded,
		Virtual:      virtual,
		GetRPCs:      c.Bus.MethodCalls(repo.MethodGet) - gets,
		BatchRPCs:    c.Bus.MethodCalls(repo.MethodGetBatch) - batches,
		ListRPCs:     c.Bus.MethodCalls(repo.MethodList) + c.Bus.MethodCalls(repo.MethodListParts) - lists,
		BytesShipped: afterB.BytesShipped - beforeB.BytesShipped,
		NotModified:  afterB.NotModified - beforeB.NotModified,
		CacheHits:    afterC.Hits - beforeC.Hits,
		Validated:    afterC.ValidatedHits - beforeC.ValidatedHits,
	}
	res.ReadRPCsPerRun = float64(res.GetRPCs+res.BatchRPCs+res.ListRPCs) / float64(runs)
	if virtual > 0 {
		res.ElemsPerSec = float64(res.Yielded) / virtual.Seconds()
	}
	return res, nil
}

// addCacheRow renders one sweep row into the summary table.
func addCacheRow(table *metrics.Table, res cacheResult) {
	table.AddRow(
		res.Semantics,
		res.Phase,
		fmt.Sprintf("%d", res.Runs),
		res.Virtual.Round(time.Millisecond).String(),
		fmt.Sprintf("%.0f", res.ElemsPerSec),
		fmt.Sprintf("%.1f", res.ReadRPCsPerRun),
		fmt.Sprintf("%d", res.BatchRPCs),
		fmt.Sprintf("%d", res.NotModified),
		fmt.Sprintf("%d", res.BytesShipped),
		fmt.Sprintf("%d", res.CacheHits),
		fmt.Sprintf("%d", res.Validated),
	)
}

// cacheBatchTotals sums the engine batch counters across the storage
// nodes — the server-side ground truth for what conditional fetching
// shipped versus elided.
func cacheBatchTotals(c *cluster.Cluster) store.BatchStats {
	var tot store.BatchStats
	for _, srv := range c.Servers {
		b := srv.Store().Stats().Batch
		tot.NotModified += b.NotModified
		tot.BytesShipped += b.BytesShipped
		tot.BytesSaved += b.BytesSaved
	}
	return tot
}

// runCacheSweep measures the version-validated element cache on the
// elements hot path: a cold run (empty cache), a warm run over the
// unchanged set (snapshot runs serve with no fetch RPC at all;
// current-state runs revalidate and get NotModified back), and a run
// after a remote writer mutated ~10% of the objects plus the membership
// (only the changed objects re-ship). Times are virtual, so the latency
// the cache removes is visible; payload bytes come from the storage
// engines themselves.
func runCacheSweep(jsonPath string, quick bool, seed int64, scale sim.TimeScale) error {
	size := 1000
	if quick {
		size = 64
	}
	const (
		storageNodes = 4
		latency      = 25 * time.Millisecond
		objectBytes  = 256
	)
	// The cache pays off in the latency-bound regime the paper targets
	// (mobile clients on a WAN), so the fetch pipe is kept narrow — small
	// batches, one in flight per node — and the clock runs at scale 1 so
	// per-element CPU does not get inflated into the virtual times the
	// speedup is computed from.
	fetch := core.FetchOptions{Batch: 8, Inflight: 1}
	if scale == 0 {
		scale = 1
	}

	report := cacheReport{
		Meta:                  inprocMeta(),
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		StorageNodes:          storageNodes,
		Seed:                  seed,
		Scale:                 float64(scale),
		LatencyMs:             float64(latency) / float64(time.Millisecond),
		ObjectBytes:           objectBytes,
		Speedup:               map[string]float64{},
		ByteReduction:         map[string]float64{},
		LeaseSteadyRPCsPerRun: map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Element cache: %d x %dB elements, %d storage nodes, %v one-way",
			size, objectBytes, storageNodes, latency),
		"semantics", "phase", "runs", "virtual time", "elems/sec", "RPCs/run", "GetBatch", "notMod", "shipped B", "hits", "validated")

	ctx := context.Background()
	for _, sem := range []core.Semantics{core.Snapshot, core.GrowOnly} {
		c, err := cluster.New(cluster.Config{
			StorageNodes: storageNodes,
			Seed:         seed,
			Scale:        scale,
			Latency:      sim.Fixed(latency),
		})
		if err != nil {
			return fmt.Errorf("cache sweep: %w", err)
		}
		coll := "cache"
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
			c.Close()
			return fmt.Errorf("cache sweep: %w", err)
		}
		refs := make([]repo.Ref, size)
		for i := 0; i < size; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, objectBytes)}
			ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
			if err == nil {
				err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: populate: %w", err)
			}
			refs[i] = ref
		}
		if report.Engine == "" {
			es, err := c.Client.StoreStats(ctx, cluster.DirNode)
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %w", err)
			}
			report.Engine = es.Engine
		}

		cache := repo.NewCache(2 * size)
		c.Client.UseCache(cache)
		set, err := core.NewSet(c.Client, cluster.DirNode, coll, core.Options{Semantics: sem, Fetch: fetch})
		if err != nil {
			c.Close()
			return fmt.Errorf("cache sweep: %w", err)
		}
		// The mutating phase writes through a second client with no cache
		// attached: a genuinely remote writer our cache cannot see.
		mutator := c.ClientAt(cluster.DirNode)

		var coldPerSec, coldShipped float64
		for run, phase := range []string{"cold", "warm", "mutated"} {
			if phase == "mutated" {
				for i := 0; i < size/10; i++ {
					victim := refs[i*10]
					if _, err := mutator.Put(ctx, victim.Node, repo.Object{
						ID: victim.ID, Data: make([]byte, objectBytes),
					}); err != nil {
						c.Close()
						return fmt.Errorf("cache sweep: mutate: %w", err)
					}
				}
				// Move the membership too, so snapshot runs pin a newer
				// listing and must revalidate rather than serve blind.
				obj := repo.Object{ID: "late", Data: make([]byte, objectBytes)}
				ref, err := mutator.Put(ctx, c.StorageFor(0), obj)
				if err == nil {
					err = mutator.Add(ctx, cluster.DirNode, coll, ref)
				}
				if err != nil {
					c.Close()
					return fmt.Errorf("cache sweep: mutate: %w", err)
				}
			}

			res, err := measureRuns(ctx, c, cache, set, scale, sem, phase, 1, size)
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %w", err)
			}
			report.Results = append(report.Results, res)

			switch run {
			case 0:
				coldPerSec = res.ElemsPerSec
				coldShipped = float64(res.BytesShipped)
			case 1:
				if coldPerSec > 0 {
					report.Speedup[sem.String()] = res.ElemsPerSec / coldPerSec
				}
				if coldShipped > 0 {
					report.ByteReduction[sem.String()] = 1 - float64(res.BytesShipped)/coldShipped
				}
			}
			addCacheRow(table, res)
		}

		// Steady state under a lease: only current-state semantics pay a
		// per-run revalidation RPC (warm snapshot runs were already
		// RPC-free), so only they have a lease phase. The writer is
		// quiescent, so every run after the first must cross the wire
		// exactly zero times; stopping the lease then lands the next run
		// back on the conditional-revalidate path.
		if !sem.UsesSnapshot() {
			const steadyRuns = 8
			ls := repo.NewLeaseState(c.Client, cluster.DirNode, coll)
			if err := ls.Start(ctx); err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: lease start: %w", err)
			}
			c.Client.UseLeases(ls)
			// One unrecorded run folds the post-mutation listing under the
			// lease and seeds the cross-run listing cache.
			if _, err := set.Collect(ctx); err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: lease warm-up: %w", err)
			}
			res, err := measureRuns(ctx, c, cache, set, scale, sem, "leased", steadyRuns, size)
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %w", err)
			}
			report.Results = append(report.Results, res)
			report.LeaseSteadyRPCsPerRun[sem.String()] = res.ReadRPCsPerRun
			addCacheRow(table, res)

			ls.Stop()
			lost, err := measureRuns(ctx, c, cache, set, scale, sem, "lease-lost", 1, size)
			if err != nil {
				c.Close()
				return fmt.Errorf("cache sweep: %w", err)
			}
			report.Results = append(report.Results, lost)
			addCacheRow(table, lost)
		}
		c.Close()
	}
	table.Render(os.Stdout)
	for _, sem := range []string{"snapshot", "grow-only"} {
		fmt.Printf("%s: warm %.1fx cold, %.1f%% payload bytes elided\n",
			sem, report.Speedup[sem], 100*report.ByteReduction[sem])
	}
	for sem, rate := range report.LeaseSteadyRPCsPerRun {
		fmt.Printf("%s: %.1f read RPCs/run at steady state under a held lease\n", sem, rate)
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("cache sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("cache sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("cache sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}
