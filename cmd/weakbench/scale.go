package main

// The -scale sweep: listing-path scalability. It grows one collection
// from 10k to 1M+ members and times a full Elements run at each size,
// once over the monolithic single-List baseline and once over the
// partitioned streaming ListParts path, on a zero-latency logical-time
// cluster so the numbers are pure CPU cost of the listing and fetch
// machinery. Runs use Immutable semantics: it reads the opening listing
// through exactly the same streamed path as Snapshot but takes no pin,
// whose server-side snapshot sort is O(n) by construction and would
// mask the listing path's scaling. The two figures the partitioning
// work is meant to move: per-element cost should stay flat as the set
// grows, and time-to-first-element should track the first partition,
// not the set.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/sim"
	"weaksets/internal/store"
)

// scaleResult is one row of the -scale sweep: the best-of-rounds
// Elements run at one size and listing mode.
type scaleResult struct {
	Mode          string        `json:"mode"` // "monolithic" or "partitioned"
	Elements      int           `json:"elements"`
	Partitions    int           `json:"partitions"`
	Yielded       int           `json:"yielded"`
	Setup         time.Duration `json:"setupNs"` // Elements(): open the run, first partition folded
	FirstElement  time.Duration `json:"firstElementNs"`
	Total         time.Duration `json:"totalNs"`
	PerElementNs  float64       `json:"perElementNs"`
	ListRPCs      int64         `json:"listRPCs"`
	ListPartsRPCs int64         `json:"listPartsRPCs"`
	BatchRPCs     int64         `json:"getBatchRPCs"`
}

// scaleReport is the BENCH_scale.json document. The ratio maps hold the
// sweep's acceptance figures, each keyed by mode: PerElementRatio is
// per-element cost at the largest size over the smallest (flat scaling
// ⇒ ~1.0), FirstElementRatio the same for time-to-first-element.
type scaleReport struct {
	Meta              benchMeta          `json:"meta"`
	GOMAXPROCS        int                `json:"gomaxprocs"`
	Engine            string             `json:"engine"`
	StorageNodes      int                `json:"storageNodes"`
	PayloadBytes      int                `json:"payloadBytes"`
	Rounds            int                `json:"rounds"`
	Sizes             []int              `json:"sizes"`
	SeedSeconds       map[string]float64 `json:"seedSeconds"`
	Results           []scaleResult      `json:"results"`
	PerElementRatio   map[string]float64 `json:"perElementRatio"`
	FirstElementRatio map[string]float64 `json:"firstElementRatio"`
}

const (
	scaleDir     = netsim.NodeID("dir")
	scaleColl    = "scale"
	scalePayload = 64
	scaleStorage = 4
)

// scalePartitions picks the listing partition count for an n-member
// collection: the engine default for small sets, then enough partitions
// to keep each streamed frame near 8k refs, so the first frame — and
// with it the first element — costs the same no matter how big the set
// behind it is.
func scalePartitions(n int) int {
	p := n / 8192
	if p < store.DefaultPartitions {
		return store.DefaultPartitions
	}
	return p
}

// scaleWorld is the zero-latency bench substrate: a directory node whose
// engine is built with the partition count under test, storage nodes
// holding the member objects, and direct engine handles so seeding a
// million members doesn't pay two million RPCs.
type scaleWorld struct {
	bus     *rpc.Bus
	client  *repo.Client
	servers []*repo.Server
}

func (w *scaleWorld) close() {
	for _, srv := range w.servers {
		srv.Close()
	}
}

// newScaleWorld builds the substrate and seeds an n-member collection:
// objects round-robin across the storage nodes, membership on the
// directory node.
func newScaleWorld(n, partitions int, seed int64) (*scaleWorld, error) {
	const home = netsim.NodeID("home")
	net := netsim.New(netsim.Config{
		Seed:           seed,
		DefaultLatency: sim.Fixed(0),
		Scale:          0, // logical time: wall clock measures CPU cost only
	})
	net.AddNode(home)
	net.AddNode(scaleDir)
	storage := net.AddNodes("s", scaleStorage)

	bus := rpc.NewBus(net)
	w := &scaleWorld{bus: bus, client: repo.NewClient(bus, home)}

	dirStore := store.NewSharded(store.Config{Partitions: partitions})
	dirSrv, err := repo.NewServerWithStore(bus, scaleDir, dirStore)
	if err != nil {
		return nil, err
	}
	w.servers = append(w.servers, dirSrv)

	stores := make([]store.Store, len(storage))
	for i, node := range storage {
		stores[i] = store.NewSharded(store.Config{})
		srv, err := repo.NewServerWithStore(bus, node, stores[i])
		if err != nil {
			w.close()
			return nil, err
		}
		w.servers = append(w.servers, srv)
	}

	if err := dirStore.CreateCollection(scaleColl); err != nil {
		w.close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%07d", i)), Data: make([]byte, scalePayload)}
		si := i % len(storage)
		if _, err := stores[si].PutObject(obj); err != nil {
			w.close()
			return nil, fmt.Errorf("seed object %s: %w", obj.ID, err)
		}
		if _, err := dirStore.Add(scaleColl, repo.Ref{ID: obj.ID, Node: storage[si]}); err != nil {
			w.close()
			return nil, fmt.Errorf("seed member %s: %w", obj.ID, err)
		}
	}
	return w, nil
}

// runScaleOnce times one full Elements run: time-to-first-element and
// total wall time, with the membership-read RPC mix from the bus.
func runScaleOnce(ctx context.Context, w *scaleWorld, mode string) (scaleResult, error) {
	set, err := core.NewSet(w.client, scaleDir, scaleColl, core.Options{
		Semantics:         core.Immutable,
		MonolithicListing: mode == "monolithic",
	})
	if err != nil {
		return scaleResult{}, err
	}
	lists0 := w.bus.MethodCalls(repo.MethodList)
	parts0 := w.bus.MethodCalls(repo.MethodListParts)
	batches0 := w.bus.MethodCalls(repo.MethodGetBatch)

	start := time.Now()
	it, err := set.Elements(ctx)
	if err != nil {
		return scaleResult{}, err
	}
	setup := time.Since(start)
	var first time.Duration
	yielded := 0
	for it.Next(ctx) {
		if yielded == 0 {
			first = time.Since(start)
		}
		yielded++
	}
	total := time.Since(start)
	if err := it.Err(); err != nil {
		_ = it.Close(context.Background())
		return scaleResult{}, err
	}
	if err := it.Close(ctx); err != nil {
		return scaleResult{}, err
	}

	res := scaleResult{
		Mode:          mode,
		Yielded:       yielded,
		Setup:         setup,
		FirstElement:  first,
		Total:         total,
		ListRPCs:      w.bus.MethodCalls(repo.MethodList) - lists0,
		ListPartsRPCs: w.bus.MethodCalls(repo.MethodListParts) - parts0,
		BatchRPCs:     w.bus.MethodCalls(repo.MethodGetBatch) - batches0,
	}
	if yielded > 0 {
		res.PerElementNs = float64(total.Nanoseconds()) / float64(yielded)
	}
	return res, nil
}

// runScaleSweep runs the -scale sweep and writes BENCH_scale.json.
func runScaleSweep(jsonPath string, quick bool, seed int64) error {
	sizes := []int{10_000, 100_000, 1_000_000}
	rounds := 3
	if quick {
		sizes = []int{10_000, 50_000}
		rounds = 1
	}

	meta := inprocMeta()
	meta.GOMAXPROCS = runtime.GOMAXPROCS(0)
	for _, n := range sizes {
		meta.Partitions = append(meta.Partitions, scalePartitions(n))
	}
	report := scaleReport{
		Meta:              meta,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		StorageNodes:      scaleStorage,
		PayloadBytes:      scalePayload,
		Rounds:            rounds,
		Sizes:             sizes,
		SeedSeconds:       map[string]float64{},
		PerElementRatio:   map[string]float64{},
		FirstElementRatio: map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Listing scalability: full Immutable Elements run, %d storage nodes, zero latency (best of %d)",
			scaleStorage, rounds),
		"elements", "mode", "parts", "setup", "first elem", "total", "ns/elem", "List", "ListParts", "GetBatch")

	ctx := context.Background()
	// base per-mode figures at the smallest size, for the ratio maps.
	basePerElem := map[string]float64{}
	baseFirst := map[string]time.Duration{}
	for _, n := range sizes {
		partitions := scalePartitions(n)
		seedStart := time.Now()
		w, err := newScaleWorld(n, partitions, seed)
		if err != nil {
			return fmt.Errorf("scale sweep: seed %d: %w", n, err)
		}
		report.SeedSeconds[fmt.Sprintf("%d", n)] = time.Since(seedStart).Seconds()
		if report.Engine == "" {
			es, err := w.client.StoreStats(ctx, scaleDir)
			if err != nil {
				w.close()
				return fmt.Errorf("scale sweep: %w", err)
			}
			report.Engine = es.Engine
		}

		for _, mode := range []string{"monolithic", "partitioned"} {
			var best scaleResult
			for r := 0; r < rounds; r++ {
				res, err := runScaleOnce(ctx, w, mode)
				if err != nil {
					w.close()
					return fmt.Errorf("scale sweep: %s/%d: %w", mode, n, err)
				}
				if res.Yielded != n {
					w.close()
					return fmt.Errorf("scale sweep: %s/%d yielded %d elements", mode, n, res.Yielded)
				}
				if r == 0 || res.Total < best.Total {
					best = res
				}
			}
			best.Elements = n
			best.Partitions = partitions
			report.Results = append(report.Results, best)

			if n == sizes[0] {
				basePerElem[mode] = best.PerElementNs
				baseFirst[mode] = best.FirstElement
			}
			if n == sizes[len(sizes)-1] {
				if b := basePerElem[mode]; b > 0 {
					report.PerElementRatio[mode] = best.PerElementNs / b
				}
				if b := baseFirst[mode]; b > 0 {
					report.FirstElementRatio[mode] = float64(best.FirstElement) / float64(b)
				}
			}
			table.AddRow(
				fmt.Sprintf("%d", n),
				mode,
				fmt.Sprintf("%d", partitions),
				metrics.FmtDur(best.Setup),
				metrics.FmtDur(best.FirstElement),
				best.Total.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", best.PerElementNs),
				fmt.Sprintf("%d", best.ListRPCs),
				fmt.Sprintf("%d", best.ListPartsRPCs),
				fmt.Sprintf("%d", best.BatchRPCs),
			)
		}
		w.close()
	}
	table.Render(os.Stdout)
	for _, mode := range []string{"monolithic", "partitioned"} {
		fmt.Printf("%s: per-element %0.2fx, first-element %0.2fx (%d -> %d elements)\n",
			mode, report.PerElementRatio[mode], report.FirstElementRatio[mode], sizes[0], sizes[len(sizes)-1])
	}

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("scale sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("scale sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("scale sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}
