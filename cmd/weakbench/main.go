// Command weakbench runs the weak-sets evaluation: every experiment E1–E8
// from DESIGN.md §4 (the evaluation the paper promises in §5), printing one
// table per experiment. With -store it instead sweeps the storage-engine
// contention benchmark (locked vs sharded across worker counts) and writes
// the machine-readable results to BENCH_store.json. With -iter it sweeps
// the iterator fetch pipeline (batched vs one-Get-per-element) and writes
// BENCH_iter.json.
//
// With -rpc it sweeps the TCP transport (serialized vs multiplexed
// clients at increasing in-flight budgets and payload sizes, over real
// loopback sockets) and writes BENCH_rpc.json. With -obs it measures what
// the tracing and weakness-telemetry layer costs on the elements hot path
// and writes BENCH_obs.json.
//
// With -scale it sweeps the listing path itself — a full Elements run
// over one collection grown from 10k to 1M members, monolithic List
// versus partitioned streaming ListParts — and writes BENCH_scale.json.
//
// With -frontier it sweeps reader concurrency over a churning collection
// and writes the weakness-versus-throughput frontier — runs/sec against
// windowed latency and skew quantiles — to BENCH_frontier.json.
//
// With -replica it sweeps replica-parallel reads: the same churned
// collection replicated across 1/2/3 nodes with capped per-node handler
// slots, read throughput and time-to-first-element per level, a
// kill-one-replica phase showing reads completing from the survivors,
// and the replica staleness each level served — to BENCH_replica.json.
//
// Usage:
//
//	weakbench [-run E1,E5] [-quick] [-seed 42] [-timescale 0.01]
//	weakbench -store [-store-json BENCH_store.json]
//	weakbench -iter [-iter-json BENCH_iter.json]
//	weakbench -rpc [-rpc-json BENCH_rpc.json]
//	weakbench -obs [-obs-json BENCH_obs.json]
//	weakbench -scale [-scale-json BENCH_scale.json]
//	weakbench -frontier [-frontier-json BENCH_frontier.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/experiments"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/sim"
	"weaksets/internal/store"
	"weaksets/internal/tcprpc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = fs.Bool("quick", false, "trimmed sweeps")
		ablations = fs.Bool("ablations", false, "also run the design-choice ablations and extensions A1-A4")
		seed      = fs.Int64("seed", 42, "random seed")
		timeScale = fs.Float64("timescale", 0.01, "virtual-to-real time scale for experiments (0.01 = 100x compression)")
		csvOut    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		list      = fs.Bool("list", false, "list experiments and exit")
		storeRun  = fs.Bool("store", false, "run the storage-engine contention sweep instead of experiments")
		storeJSON = fs.String("store-json", "BENCH_store.json", "where -store writes its machine-readable results")
		storeQk   = fs.Bool("store-quick", false, "trim the -store sweep (fewer ops per worker)")
		iterRun   = fs.Bool("iter", false, "run the batched-iterator fetch sweep instead of experiments")
		iterJSON  = fs.String("iter-json", "BENCH_iter.json", "where -iter writes its machine-readable results")
		iterQk    = fs.Bool("iter-quick", false, "trim the -iter sweep (smaller sets)")
		iterScale = fs.Float64("iter-scale", 0.1, "time scale for -iter (gentler compression than -scale so CPU stays subdominant to the simulated WAN latency)")
		rpcRun    = fs.Bool("rpc", false, "run the TCP transport sweep (serial vs multiplexed) instead of experiments")
		rpcJSON   = fs.String("rpc-json", "BENCH_rpc.json", "where -rpc writes its machine-readable results")
		rpcQk     = fs.Bool("rpc-quick", false, "trim the -rpc sweep (smaller snapshot, fewer budgets)")
		rpcLat    = fs.Duration("rpc-latency", 2*time.Millisecond, "simulated per-RPC service time on the -rpc remote (disk/WAN stand-in)")
		obsRun    = fs.Bool("obs", false, "run the observability overhead sweep instead of experiments")
		obsJSON   = fs.String("obs-json", "BENCH_obs.json", "where -obs writes its machine-readable results")
		obsQk     = fs.Bool("obs-quick", false, "trim the -obs sweep (fewer runs per trial)")
		cacheRun  = fs.Bool("cache", false, "run the element-cache cold/warm/mutating sweep instead of experiments")
		cacheJSON = fs.String("cache-json", "BENCH_cache.json", "where -cache writes its machine-readable results")
		cacheQk   = fs.Bool("cache-quick", false, "trim the -cache sweep (smaller set)")
		scaleRun  = fs.Bool("scale", false, "run the listing scalability sweep (monolithic vs partitioned, 10k-1M elements) instead of experiments")
		scaleJSON = fs.String("scale-json", "BENCH_scale.json", "where -scale writes its machine-readable results")
		scaleQk   = fs.Bool("scale-quick", false, "trim the -scale sweep (smaller sets, one round)")
		frontRun  = fs.Bool("frontier", false, "run the weakness-vs-throughput frontier sweep instead of experiments")
		frontJSON = fs.String("frontier-json", "BENCH_frontier.json", "where -frontier writes its machine-readable results")
		frontQk   = fs.Bool("frontier-quick", false, "trim the -frontier sweep (two load points)")
		replRun   = fs.Bool("replica", false, "run the replica-parallel read sweep (1/2/3 replicas under churn, plus a kill-one-replica phase) instead of experiments")
		replJSON  = fs.String("replica-json", "BENCH_replica.json", "where -replica writes its machine-readable results")
		replQk    = fs.Bool("replica-quick", false, "trim the -replica sweep (smaller set, fewer runs)")
		trendRun  = fs.Bool("trend", false, "run quick store+iter+cache+rpc+obs+scale smoke sweeps and gate their size-independent figures against the committed BENCH_*.json reports")
		trendTol  = fs.Float64("trend-tolerance", 0.5, "multiplicative tolerance for -trend ratio comparisons (0.5 = fail below half the committed speedup)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *storeRun {
		return runStoreSweep(*storeJSON, *storeQk)
	}
	if *iterRun {
		return runIterSweep(*iterJSON, *iterQk, *seed, sim.TimeScale(*iterScale))
	}
	if *rpcRun {
		return runRPCSweep(*rpcJSON, *rpcQk, *rpcLat)
	}
	if *obsRun {
		return runObsSweep(*obsJSON, *obsQk, *seed)
	}
	if *cacheRun {
		return runCacheSweep(*cacheJSON, *cacheQk, *seed, 1)
	}
	if *scaleRun {
		return runScaleSweep(*scaleJSON, *scaleQk, *seed)
	}
	if *frontRun {
		return runFrontierSweep(*frontJSON, *frontQk, *seed)
	}
	if *replRun {
		return runReplicaSweep(*replJSON, *replQk, *seed)
	}
	if *trendRun {
		return runTrend(trendPaths{
			store: *storeJSON, iter: *iterJSON,
			cache: *cacheJSON, rpc: *rpcJSON, obs: *obsJSON, scale: *scaleJSON,
		}, *trendTol, *seed, *rpcLat, sim.TimeScale(*iterScale))
	}

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%s  %s\n", e.ID, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{
		Seed:  *seed,
		Scale: sim.TimeScale(*timeScale),
		Quick: *quick,
	}

	selected := experiments.All()
	if *ablations {
		selected = append(selected, experiments.Ablations()...)
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			exp, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, exp)
		}
	}

	for i, exp := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s — %s\n", exp.ID, exp.Claim)
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if *csvOut {
			if err := table.RenderCSV(os.Stdout); err != nil {
				return fmt.Errorf("%s: render csv: %w", exp.ID, err)
			}
		} else {
			table.Render(os.Stdout)
			fmt.Printf("(%s ran in %v wall time; durations in tables are virtual)\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// storeReport is the BENCH_store.json document: one contention sweep over
// both engines at increasing worker counts.
type storeReport struct {
	Meta       benchMeta                `json:"meta"`
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Config     store.ContentionConfig   `json:"config"`
	Results    []store.ContentionResult `json:"results"`
}

// runStoreSweep measures locked vs sharded throughput on the read-heavy
// List+Get mix at 1..GOMAXPROCS workers and writes the results to
// jsonPath. The sharded engine should scale with workers; the
// single-mutex baseline should flatten.
func runStoreSweep(jsonPath string, quick bool) error {
	base := store.ContentionConfig{
		Objects:      1024,
		Members:      256,
		OpsPerWorker: 100000,
		WriteEvery:   64,
	}
	if quick {
		base.OpsPerWorker = 20000
	}

	// Sweep past GOMAXPROCS so lock contention shows even on small
	// machines: oversubscribed workers still pile up on the global mutex.
	procs := runtime.GOMAXPROCS(0)
	maxWorkers := procs
	if maxWorkers < 8 {
		maxWorkers = 8
	}
	var workerCounts []int
	for w := 1; w < maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	workerCounts = append(workerCounts, maxWorkers)

	report := storeReport{Meta: inprocMeta(), GOMAXPROCS: procs, Config: base}
	table := metrics.NewTable(
		fmt.Sprintf("Store contention: List+Get mix, 1/%d writes (GOMAXPROCS=%d)", base.WriteEvery, procs),
		"engine", "workers", "ops/sec", "list p50", "list p99", "get p50", "get p99")
	for _, engine := range []string{"locked", "sharded"} {
		for _, workers := range workerCounts {
			cfg := base
			cfg.Engine = engine
			cfg.Workers = workers
			res, err := store.RunContention(cfg)
			if err != nil {
				return fmt.Errorf("store sweep %s/%d: %w", engine, workers, err)
			}
			report.Results = append(report.Results, res)
			perOp := map[string]store.OpStats{}
			for _, op := range res.PerOp {
				perOp[op.Op] = op
			}
			table.AddRow(
				engine,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.0f", res.OpsPerSec),
				fmtLat(perOp["list"].P50),
				fmtLat(perOp["list"].P99),
				fmtLat(perOp["get"].P50),
				fmtLat(perOp["get"].P99),
			)
		}
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("store sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// fmtLat renders an engine-op latency; these are sub-millisecond, so use
// microseconds rather than the table default.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

// benchMeta is the metadata block stamped into every BENCH_*.json
// document: the toolchain and wire configuration the numbers were
// produced under, so reports from different builds or codec settings
// are never compared blind. Sweeps that run entirely over the
// in-process simulated bus carry codec "inproc" — nothing on their hot
// path is serialized.
type benchMeta struct {
	GoVersion   string `json:"goVersion"`
	Codec       string `json:"codec"`
	Compression string `json:"compression"` // "off" or "deflate>=<N>B"
	// GOMAXPROCS and Partitions identify the machine shape and listing
	// partition configuration a sweep ran under; sweeps they don't apply
	// to leave them zero and they stay out of the JSON.
	GOMAXPROCS int   `json:"gomaxprocs,omitempty"`
	Partitions []int `json:"partitions,omitempty"`
}

func newBenchMeta(codec string, compress bool, compressMin int) benchMeta {
	m := benchMeta{GoVersion: runtime.Version(), Codec: codec, Compression: "off"}
	if compress {
		m.Compression = fmt.Sprintf("deflate>=%dB", compressMin)
	}
	return m
}

// inprocMeta is the metadata for sweeps with no wire in the hot path.
func inprocMeta() benchMeta { return newBenchMeta("inproc", false, 0) }

// rpcResult is one row of the -rpc sweep: one full snapshot fetch over
// real TCP with a fixed transport mode, in-flight budget, and payload.
type rpcResult struct {
	Mode        string        `json:"mode"` // "serial" or "multiplexed"
	Budget      int           `json:"budget"`
	Payload     int           `json:"payloadBytes"`
	Elements    int           `json:"elements"`
	Batches     int64         `json:"batchRPCs"`
	Elapsed     time.Duration `json:"elapsedNs"`
	ElemsPerSec float64       `json:"elemsPerSec"`
	CallsPerSec float64       `json:"callsPerSec"`
	MeanRTT     time.Duration `json:"meanRttNs"`
	P99RTT      time.Duration `json:"p99RttNs"`
	MaxInFlight int64         `json:"maxInFlight"`
}

// rpcCodecCfg selects the wire configuration for one codec-section row.
type rpcCodecCfg struct {
	label       string
	codec       string
	compress    bool
	compressMin int
}

// rpcCodecResult is one row of the codec section: the same snapshot
// fetch with the client pinned to one codec, at zero service latency so
// serialization is the dominant cost. AllocsPerCall is whole-process
// (client plus the in-process remote) — the comparative figure the
// pooled-frame codec is meant to move, not a per-side absolute.
type rpcCodecResult struct {
	Codec         string        `json:"codec"`
	Compress      bool          `json:"compress"`
	Payload       int           `json:"payloadBytes"`
	Budget        int           `json:"budget"`
	Batches       int64         `json:"batchRPCs"`
	Elapsed       time.Duration `json:"elapsedNs"`
	CallsPerSec   float64       `json:"callsPerSec"`
	ElemsPerSec   float64       `json:"elemsPerSec"`
	AllocsPerCall float64       `json:"allocsPerCall"`
	BytesSent     int64         `json:"bytesSent"`
	BytesReceived int64         `json:"bytesReceived"`
}

// rpcReport is the BENCH_rpc.json document. Speedup maps
// "payload=N/budget=B" to multiplexed-over-serial elements/sec;
// CodecSpeedup maps "payload=N" to wirebin-over-gob calls/sec at the
// codec section's fixed budget.
type rpcReport struct {
	Meta             benchMeta          `json:"meta"`
	GOMAXPROCS       int                `json:"gomaxprocs"`
	Elements         int                `json:"elements"`
	Batch            int                `json:"batch"`
	ServiceLatencyMs float64            `json:"serviceLatencyMs"`
	Payloads         []int              `json:"payloads"`
	Budgets          []int              `json:"budgets"`
	Results          []rpcResult        `json:"results"`
	Speedup          map[string]float64 `json:"speedup"`
	CodecResults     []rpcCodecResult   `json:"codecResults"`
	CodecSpeedup     map[string]float64 `json:"codecSpeedup"`
}

// startRPCRemote boots the sweep's "remote process": its own network,
// bus, and repository server, reachable only over loopback TCP. Every
// dispatched RPC first pays lat of simulated service time (the stand-in
// for disk or WAN work a real archive would do), which is exactly the
// latency a serialized transport eats once per round trip and a
// multiplexed transport overlaps.
func startRPCRemote(lat time.Duration, workers int) (*tcprpc.Server, func(), error) {
	const node = netsim.NodeID("archive")
	net := netsim.New(netsim.Config{})
	net.AddNode(node)
	bus := rpc.NewBus(net)
	repoSrv, err := repo.NewServer(bus, node)
	if err != nil {
		return nil, nil, err
	}
	dispatch := rpc.NewServer(node)
	for _, method := range tcprpc.RepoMethods() {
		method := method
		dispatch.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			if lat > 0 {
				time.Sleep(lat)
			}
			out, _, err := bus.Call(ctx, node, node, method, req)
			return out, err
		})
	}
	srv, err := tcprpc.ServeConfig("127.0.0.1:0", dispatch, tcprpc.ServerConfig{Workers: workers})
	if err != nil {
		repoSrv.Close()
		return nil, nil, err
	}
	cleanup := func() {
		srv.Close()
		repoSrv.Close()
	}
	return srv, cleanup, nil
}

// runRPCSweep measures the transport itself on the snapshot fetch
// workload: the full membership of an n-element collection is fetched
// through GetBatch RPCs over one TCP connection, by `budget` workers
// sharing one client. The serial mode pins the client's in-flight
// budget to 1 — the one-RPC-per-round-trip transport the repo used to
// have — so the sweep isolates what multiplexing buys at each
// concurrency level and payload size.
func runRPCSweep(jsonPath string, quick bool, serviceLat time.Duration) error {
	elements, batch := 1000, 16
	payloads := []int{256, 4096}
	budgets := []int{1, 2, 4, 8, 16}
	if quick {
		elements = 200
		payloads = []int{256}
		budgets = []int{1, 8}
	}
	maxBudget := budgets[len(budgets)-1]

	report := rpcReport{
		Meta:             newBenchMeta(tcprpc.CodecWirebin, false, 0),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Elements:         elements,
		Batch:            batch,
		ServiceLatencyMs: float64(serviceLat) / float64(time.Millisecond),
		Payloads:         payloads,
		Budgets:          budgets,
		Speedup:          map[string]float64{},
		CodecSpeedup:     map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("TCP transport: %d-element snapshot fetch, batch=%d, %.1fms service time per RPC",
			elements, batch, report.ServiceLatencyMs),
		"payload", "budget", "mode", "elapsed", "elems/sec", "rpc/sec", "rtt p99", "speedup")

	ctx := context.Background()
	for _, payload := range payloads {
		srv, stop, err := startRPCRemote(serviceLat, maxBudget)
		if err != nil {
			return fmt.Errorf("rpc sweep: %w", err)
		}

		if err := seedSnapshot(ctx, srv.Addr(), elements, payload); err != nil {
			stop()
			return fmt.Errorf("rpc sweep: %w", err)
		}

		for _, budget := range budgets {
			base := 0.0
			for _, mode := range []string{"serial", "multiplexed"} {
				res, err := runRPCFetch(ctx, srv.Addr(), mode, budget, batch, elements)
				if err != nil {
					stop()
					return fmt.Errorf("rpc sweep: %s/budget=%d: %w", mode, budget, err)
				}
				res.Payload = payload
				report.Results = append(report.Results, res)

				speedup := "-"
				if mode == "serial" {
					base = res.ElemsPerSec
				} else if base > 0 {
					ratio := res.ElemsPerSec / base
					report.Speedup[fmt.Sprintf("payload=%d/budget=%d", payload, budget)] = ratio
					speedup = fmt.Sprintf("%.1fx", ratio)
				}
				table.AddRow(
					fmt.Sprintf("%dB", payload),
					fmt.Sprintf("%d", budget),
					mode,
					res.Elapsed.Round(time.Millisecond).String(),
					fmt.Sprintf("%.0f", res.ElemsPerSec),
					fmt.Sprintf("%.0f", res.CallsPerSec),
					metrics.FmtDur(res.P99RTT),
					speedup,
				)
			}
		}
		stop()
	}
	table.Render(os.Stdout)

	// The codec section re-runs the budget-8 fetch with the service time
	// zeroed: with no simulated disk in the way, what remains per call is
	// framing and (de)serialization, so the gob-versus-wirebin step is
	// visible instead of hiding behind milliseconds of sleep.
	const (
		codecBudget = 8
		codecBatch  = 64
	)
	codecCfgs := []rpcCodecCfg{
		{label: "gob", codec: tcprpc.CodecGob},
		{label: "wirebin", codec: tcprpc.CodecWirebin},
		{label: "wirebin+z", codec: tcprpc.CodecWirebin, compress: true, compressMin: 512},
	}
	ctable := metrics.NewTable(
		fmt.Sprintf("TCP codec: %d-element snapshot fetch, batch=%d, budget=%d, no service latency",
			elements, codecBatch, codecBudget),
		"payload", "codec", "rpc/sec", "allocs/call", "sent B/call", "recv B/call", "speedup")
	rounds := 20
	if quick {
		rounds = 5
	}
	for _, payload := range payloads {
		srv, err := startCodecRemote(elements, payload, codecBudget)
		if err != nil {
			return fmt.Errorf("rpc codec sweep: %w", err)
		}
		stop := func() { srv.Close() }
		base := 0.0
		for _, cfg := range codecCfgs {
			res, err := runCodecFetch(ctx, srv.Addr(), cfg, codecBudget, codecBatch, elements, rounds)
			if err != nil {
				stop()
				return fmt.Errorf("rpc codec sweep: %s/payload=%d: %w", cfg.label, payload, err)
			}
			res.Payload = payload
			report.CodecResults = append(report.CodecResults, res)

			speedup := "-"
			switch {
			case cfg.label == "gob":
				base = res.CallsPerSec
			case cfg.label == "wirebin" && base > 0:
				ratio := res.CallsPerSec / base
				report.CodecSpeedup[fmt.Sprintf("payload=%d", payload)] = ratio
				speedup = fmt.Sprintf("%.1fx", ratio)
			}
			perCall := func(total int64) string {
				if res.Batches == 0 {
					return "-"
				}
				return fmt.Sprintf("%d", total/res.Batches)
			}
			ctable.AddRow(
				fmt.Sprintf("%dB", payload),
				cfg.label,
				fmt.Sprintf("%.0f", res.CallsPerSec),
				fmt.Sprintf("%.1f", res.AllocsPerCall),
				perCall(res.BytesSent),
				perCall(res.BytesReceived),
				speedup,
			)
		}
		stop()
	}
	ctable.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("rpc sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("rpc sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("rpc sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// startCodecRemote serves the snapshot straight from memory: no
// simulated bus, no storage engine, no service latency. Against this
// remote the fetch loop's cost is the transport and the codec alone,
// which is exactly what the codec section compares.
func startCodecRemote(elements, payload, workers int) (*tcprpc.Server, error) {
	members := make([]repo.Ref, elements)
	objs := make(map[repo.ObjectID]repo.Object, elements)
	for i := range members {
		id := repo.ObjectID(fmt.Sprintf("e%04d", i))
		members[i] = repo.Ref{ID: id, Node: "archive"}
		objs[id] = repo.Object{ID: id, Data: make([]byte, payload), Version: 1}
	}
	dispatch := rpc.NewServer("archive")
	dispatch.Handle(repo.MethodList, func(context.Context, netsim.NodeID, any) (any, error) {
		return repo.ListResp{Members: members, Version: 1}, nil
	})
	dispatch.Handle(repo.MethodGetBatch, func(_ context.Context, _ netsim.NodeID, req any) (any, error) {
		in, ok := req.(repo.GetBatchReq)
		if !ok {
			return nil, fmt.Errorf("GetBatch: bad body %T", req)
		}
		resp := repo.GetBatchResp{Objects: make([]repo.Object, 0, len(in.IDs))}
		for _, id := range in.IDs {
			resp.Objects = append(resp.Objects, objs[id])
		}
		return resp, nil
	})
	return tcprpc.ServeConfig("127.0.0.1:0", dispatch, tcprpc.ServerConfig{Workers: workers})
}

// seedSnapshot populates the "snap" collection on the remote at addr
// with `elements` objects of `payload` bytes each.
func seedSnapshot(ctx context.Context, addr string, elements, payload int) error {
	seed := tcprpc.Dial(addr, "seeder")
	defer seed.Close()
	if _, err := seed.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "snap"}); err != nil {
		return err
	}
	for i := 0; i < elements; i++ {
		obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, payload)}
		if _, err := seed.Call(ctx, repo.MethodPut, repo.PutReq{Obj: obj}); err != nil {
			return fmt.Errorf("populate: %w", err)
		}
		if _, err := seed.Call(ctx, repo.MethodAdd, repo.AddReq{Name: "snap", Ref: repo.Ref{ID: obj.ID, Node: "archive"}}); err != nil {
			return fmt.Errorf("populate: %w", err)
		}
	}
	return nil
}

// drainSnapshot performs one timed snapshot fetch over client: list the
// membership, split it into GetBatch calls of `batch` ids, and drain
// them with `budget` workers sharing the one client.
func drainSnapshot(ctx context.Context, client *tcprpc.Client, budget, batch, elements int) (time.Duration, error) {
	out, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "snap"})
	if err != nil {
		return 0, err
	}
	members := out.(repo.ListResp).Members
	if len(members) != elements {
		return 0, fmt.Errorf("snapshot lists %d members, want %d", len(members), elements)
	}
	batches := make(chan []repo.ObjectID, (len(members)+batch-1)/batch)
	for lo := 0; lo < len(members); lo += batch {
		hi := lo + batch
		if hi > len(members) {
			hi = len(members)
		}
		ids := make([]repo.ObjectID, 0, hi-lo)
		for _, ref := range members[lo:hi] {
			ids = append(ids, ref.ID)
		}
		batches <- ids
	}
	close(batches)

	var (
		wg      sync.WaitGroup
		fetched atomic.Int64
		firstMu sync.Mutex
		callErr error
	)
	start := time.Now()
	for w := 0; w < budget; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ids := range batches {
				out, err := client.Call(ctx, repo.MethodGetBatch, repo.GetBatchReq{IDs: ids})
				if err != nil {
					firstMu.Lock()
					if callErr == nil {
						callErr = err
					}
					firstMu.Unlock()
					return
				}
				fetched.Add(int64(len(out.(repo.GetBatchResp).Objects)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if callErr != nil {
		return 0, callErr
	}
	if got := fetched.Load(); got != int64(elements) {
		return 0, fmt.Errorf("fetched %d elements, want %d", got, elements)
	}
	return elapsed, nil
}

// runRPCFetch runs drainSnapshot on a fresh client. In serial mode the
// client's in-flight budget is pinned to 1 so the wire carries one RPC
// at a time no matter how many workers queue behind it.
func runRPCFetch(ctx context.Context, addr, mode string, budget, batch, elements int) (rpcResult, error) {
	client := tcprpc.Dial(addr, fmt.Sprintf("bench-%s-%d", mode, budget))
	if mode == "serial" {
		client.MaxInflight = 1
	}
	defer client.Close()

	elapsed, err := drainSnapshot(ctx, client, budget, batch, elements)
	if err != nil {
		return rpcResult{}, err
	}

	st := client.Stats()
	res := rpcResult{
		Mode:        mode,
		Budget:      budget,
		Elements:    elements,
		Elapsed:     elapsed,
		MaxInFlight: st.MaxInFlight,
	}
	for _, m := range st.Methods {
		if m.Method == repo.MethodGetBatch {
			res.Batches = m.Count
			res.MeanRTT = m.Mean
			res.P99RTT = m.P99
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		res.ElemsPerSec = float64(elements) / s
		res.CallsPerSec = float64(res.Batches) / s
	}
	return res, nil
}

// runCodecFetch runs drainSnapshot with the client pinned to cfg's wire
// configuration, reading runtime.MemStats around the timed region:
// ΔMallocs over GetBatch calls is the whole-process allocations-per-call
// figure. Wire bytes come from the client's own per-method accounting,
// so a compression win shows up as fewer BytesReceived for the same
// payload.
func runCodecFetch(ctx context.Context, addr string, cfg rpcCodecCfg, budget, batch, elements, rounds int) (rpcCodecResult, error) {
	client := tcprpc.Dial(addr, "bench-codec-"+cfg.label)
	client.Codec = cfg.codec
	client.Compress = cfg.compress
	if cfg.compressMin > 0 {
		client.CompressMin = cfg.compressMin
	}
	defer client.Close()

	// Warm the connection (and run the handshake) outside the timed and
	// alloc-counted region.
	if _, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "snap"}); err != nil {
		return rpcCodecResult{}, err
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var elapsed time.Duration
	for i := 0; i < rounds; i++ {
		d, err := drainSnapshot(ctx, client, budget, batch, elements)
		if err != nil {
			return rpcCodecResult{}, err
		}
		elapsed += d
	}
	runtime.ReadMemStats(&m1)

	st := client.Stats()
	res := rpcCodecResult{
		Codec:    cfg.label,
		Compress: cfg.compress,
		Budget:   budget,
		Elapsed:  elapsed,
	}
	for _, m := range st.Methods {
		if m.Method == repo.MethodGetBatch {
			res.Batches = m.Count
			res.BytesSent = m.BytesSent
			res.BytesReceived = m.BytesReceived
		}
	}
	if res.Batches > 0 {
		res.AllocsPerCall = float64(m1.Mallocs-m0.Mallocs) / float64(res.Batches)
	}
	if s := elapsed.Seconds(); s > 0 {
		res.ElemsPerSec = float64(elements*rounds) / s
		res.CallsPerSec = float64(res.Batches) / s
	}
	return res, nil
}

// iterResult is one row of the -iter sweep: one iterator run over a
// populated collection with a fixed fetch configuration.
type iterResult struct {
	Semantics   string        `json:"semantics"`
	Elements    int           `json:"elements"`
	Mode        string        `json:"mode"` // "batched" or "per-object"
	Yielded     int           `json:"yielded"`
	Virtual     time.Duration `json:"virtualNs"`
	ElemsPerSec float64       `json:"elemsPerSec"` // per virtual second
	GetRPCs     int64         `json:"getRPCs"`
	BatchRPCs   int64         `json:"getBatchRPCs"`
	ListRPCs    int64         `json:"listRPCs"`
}

// iterReport is the BENCH_iter.json document. Speedup maps
// "semantics/elements" to batched-over-baseline elements/sec.
type iterReport struct {
	Meta         benchMeta          `json:"meta"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Engine       string             `json:"engine"`
	StorageNodes int                `json:"storageNodes"`
	Seed         int64              `json:"seed"`
	Scale        float64            `json:"scale"`
	LatencyMs    float64            `json:"oneWayLatencyMs"`
	Batch        int                `json:"batch"`
	Inflight     int                `json:"inflight"`
	Results      []iterResult       `json:"results"`
	Speedup      map[string]float64 `json:"speedup"`
}

// runIterSweep measures the elements hot path: elements/sec (in virtual
// time) for the batched, pipelined fetch pipeline against the
// one-Get-per-element baseline, per semantics and set size, with members
// spread round-robin across the storage nodes. RPC counts come from the
// bus, so the round-trip savings are visible next to the throughput.
func runIterSweep(jsonPath string, quick bool, seed int64, scale sim.TimeScale) error {
	sizes := []int{100, 1000}
	if quick {
		sizes = []int{64}
	}
	const (
		storageNodes = 4
		latency      = 10 * time.Millisecond
	)
	fetch := core.FetchOptions{}.WithDefaults()
	if scale == 0 {
		scale = sim.DefaultScale
	}

	report := iterReport{
		Meta:         inprocMeta(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StorageNodes: storageNodes,
		Seed:         seed,
		Scale:        float64(scale),
		LatencyMs:    float64(latency) / float64(time.Millisecond),
		Batch:        fetch.Batch,
		Inflight:     fetch.Inflight,
		Speedup:      map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Iterator fetch pipeline: batch=%d inflight=%d, %d storage nodes, %v one-way",
			fetch.Batch, fetch.Inflight, storageNodes, latency),
		"semantics", "elements", "mode", "virtual time", "elems/sec", "Get", "GetBatch", "speedup")

	ctx := context.Background()
	for _, size := range sizes {
		c, err := cluster.New(cluster.Config{
			StorageNodes: storageNodes,
			Seed:         seed,
			Scale:        scale,
			Latency:      sim.Fixed(latency),
		})
		if err != nil {
			return fmt.Errorf("iter sweep: %w", err)
		}
		coll := fmt.Sprintf("iter%d", size)
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
			c.Close()
			return fmt.Errorf("iter sweep: %w", err)
		}
		for i := 0; i < size; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, 256)}
			ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
			if err == nil {
				err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err != nil {
				c.Close()
				return fmt.Errorf("iter sweep: populate: %w", err)
			}
		}
		if report.Engine == "" {
			es, err := c.Client.StoreStats(ctx, cluster.DirNode)
			if err != nil {
				c.Close()
				return fmt.Errorf("iter sweep: %w", err)
			}
			report.Engine = es.Engine
		}

		for _, sem := range []core.Semantics{core.Snapshot, core.GrowOnly} {
			base := 0.0
			for _, mode := range []string{"per-object", "batched"} {
				set, err := core.NewSet(c.Client, cluster.DirNode, coll, core.Options{
					Semantics: sem,
					Fetch:     core.FetchOptions{Disable: mode == "per-object"},
				})
				if err != nil {
					c.Close()
					return fmt.Errorf("iter sweep: %w", err)
				}
				gets := c.Bus.MethodCalls(repo.MethodGet)
				batches := c.Bus.MethodCalls(repo.MethodGetBatch)
				lists := c.Bus.MethodCalls(repo.MethodList)
				elapsed := scale.Stopwatch()
				elems, err := set.Collect(ctx)
				virtual := elapsed()
				if err != nil {
					c.Close()
					return fmt.Errorf("iter sweep: %s/%s/%d: %w", sem, mode, size, err)
				}
				res := iterResult{
					Semantics: sem.String(),
					Elements:  size,
					Mode:      mode,
					Yielded:   len(elems),
					Virtual:   virtual,
					GetRPCs:   c.Bus.MethodCalls(repo.MethodGet) - gets,
					BatchRPCs: c.Bus.MethodCalls(repo.MethodGetBatch) - batches,
					ListRPCs:  c.Bus.MethodCalls(repo.MethodList) - lists,
				}
				if virtual > 0 {
					res.ElemsPerSec = float64(res.Yielded) / virtual.Seconds()
				}
				report.Results = append(report.Results, res)

				speedup := "-"
				if mode == "per-object" {
					base = res.ElemsPerSec
				} else if base > 0 {
					ratio := res.ElemsPerSec / base
					report.Speedup[fmt.Sprintf("%s/%d", sem, size)] = ratio
					speedup = fmt.Sprintf("%.1fx", ratio)
				}
				table.AddRow(
					sem.String(),
					fmt.Sprintf("%d", size),
					mode,
					virtual.Round(time.Millisecond).String(),
					fmt.Sprintf("%.0f", res.ElemsPerSec),
					fmt.Sprintf("%d", res.GetRPCs),
					fmt.Sprintf("%d", res.BatchRPCs),
					speedup,
				)
			}
		}
		c.Close()
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("iter sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("iter sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("iter sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}
