// Command weakbench runs the weak-sets evaluation: every experiment E1–E8
// from DESIGN.md §4 (the evaluation the paper promises in §5), printing one
// table per experiment. With -store it instead sweeps the storage-engine
// contention benchmark (locked vs sharded across worker counts) and writes
// the machine-readable results to BENCH_store.json. With -iter it sweeps
// the iterator fetch pipeline (batched vs one-Get-per-element) and writes
// BENCH_iter.json.
//
// With -rpc it sweeps the TCP transport (serialized vs multiplexed
// clients at increasing in-flight budgets and payload sizes, over real
// loopback sockets) and writes BENCH_rpc.json. With -obs it measures what
// the tracing and weakness-telemetry layer costs on the elements hot path
// and writes BENCH_obs.json.
//
// Usage:
//
//	weakbench [-run E1,E5] [-quick] [-seed 42] [-scale 0.01]
//	weakbench -store [-store-json BENCH_store.json]
//	weakbench -iter [-iter-json BENCH_iter.json]
//	weakbench -rpc [-rpc-json BENCH_rpc.json]
//	weakbench -obs [-obs-json BENCH_obs.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/experiments"
	"weaksets/internal/metrics"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/sim"
	"weaksets/internal/store"
	"weaksets/internal/tcprpc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = fs.Bool("quick", false, "trimmed sweeps")
		ablations = fs.Bool("ablations", false, "also run the design-choice ablations and extensions A1-A4")
		seed      = fs.Int64("seed", 42, "random seed")
		scale     = fs.Float64("scale", 0.01, "virtual-to-real time scale (0.01 = 100x compression)")
		csvOut    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		list      = fs.Bool("list", false, "list experiments and exit")
		storeRun  = fs.Bool("store", false, "run the storage-engine contention sweep instead of experiments")
		storeJSON = fs.String("store-json", "BENCH_store.json", "where -store writes its machine-readable results")
		storeQk   = fs.Bool("store-quick", false, "trim the -store sweep (fewer ops per worker)")
		iterRun   = fs.Bool("iter", false, "run the batched-iterator fetch sweep instead of experiments")
		iterJSON  = fs.String("iter-json", "BENCH_iter.json", "where -iter writes its machine-readable results")
		iterQk    = fs.Bool("iter-quick", false, "trim the -iter sweep (smaller sets)")
		iterScale = fs.Float64("iter-scale", 0.1, "time scale for -iter (gentler compression than -scale so CPU stays subdominant to the simulated WAN latency)")
		rpcRun    = fs.Bool("rpc", false, "run the TCP transport sweep (serial vs multiplexed) instead of experiments")
		rpcJSON   = fs.String("rpc-json", "BENCH_rpc.json", "where -rpc writes its machine-readable results")
		rpcQk     = fs.Bool("rpc-quick", false, "trim the -rpc sweep (smaller snapshot, fewer budgets)")
		rpcLat    = fs.Duration("rpc-latency", 2*time.Millisecond, "simulated per-RPC service time on the -rpc remote (disk/WAN stand-in)")
		obsRun    = fs.Bool("obs", false, "run the observability overhead sweep instead of experiments")
		obsJSON   = fs.String("obs-json", "BENCH_obs.json", "where -obs writes its machine-readable results")
		obsQk     = fs.Bool("obs-quick", false, "trim the -obs sweep (fewer runs per trial)")
		cacheRun  = fs.Bool("cache", false, "run the element-cache cold/warm/mutating sweep instead of experiments")
		cacheJSON = fs.String("cache-json", "BENCH_cache.json", "where -cache writes its machine-readable results")
		cacheQk   = fs.Bool("cache-quick", false, "trim the -cache sweep (smaller set)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *storeRun {
		return runStoreSweep(*storeJSON, *storeQk)
	}
	if *iterRun {
		return runIterSweep(*iterJSON, *iterQk, *seed, sim.TimeScale(*iterScale))
	}
	if *rpcRun {
		return runRPCSweep(*rpcJSON, *rpcQk, *rpcLat)
	}
	if *obsRun {
		return runObsSweep(*obsJSON, *obsQk, *seed)
	}
	if *cacheRun {
		return runCacheSweep(*cacheJSON, *cacheQk, *seed, 1)
	}

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%s  %s\n", e.ID, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{
		Seed:  *seed,
		Scale: sim.TimeScale(*scale),
		Quick: *quick,
	}

	selected := experiments.All()
	if *ablations {
		selected = append(selected, experiments.Ablations()...)
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			exp, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, exp)
		}
	}

	for i, exp := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s — %s\n", exp.ID, exp.Claim)
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if *csvOut {
			if err := table.RenderCSV(os.Stdout); err != nil {
				return fmt.Errorf("%s: render csv: %w", exp.ID, err)
			}
		} else {
			table.Render(os.Stdout)
			fmt.Printf("(%s ran in %v wall time; durations in tables are virtual)\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// storeReport is the BENCH_store.json document: one contention sweep over
// both engines at increasing worker counts.
type storeReport struct {
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Config     store.ContentionConfig   `json:"config"`
	Results    []store.ContentionResult `json:"results"`
}

// runStoreSweep measures locked vs sharded throughput on the read-heavy
// List+Get mix at 1..GOMAXPROCS workers and writes the results to
// jsonPath. The sharded engine should scale with workers; the
// single-mutex baseline should flatten.
func runStoreSweep(jsonPath string, quick bool) error {
	base := store.ContentionConfig{
		Objects:      1024,
		Members:      256,
		OpsPerWorker: 100000,
		WriteEvery:   64,
	}
	if quick {
		base.OpsPerWorker = 20000
	}

	// Sweep past GOMAXPROCS so lock contention shows even on small
	// machines: oversubscribed workers still pile up on the global mutex.
	procs := runtime.GOMAXPROCS(0)
	maxWorkers := procs
	if maxWorkers < 8 {
		maxWorkers = 8
	}
	var workerCounts []int
	for w := 1; w < maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	workerCounts = append(workerCounts, maxWorkers)

	report := storeReport{GOMAXPROCS: procs, Config: base}
	table := metrics.NewTable(
		fmt.Sprintf("Store contention: List+Get mix, 1/%d writes (GOMAXPROCS=%d)", base.WriteEvery, procs),
		"engine", "workers", "ops/sec", "list p50", "list p99", "get p50", "get p99")
	for _, engine := range []string{"locked", "sharded"} {
		for _, workers := range workerCounts {
			cfg := base
			cfg.Engine = engine
			cfg.Workers = workers
			res, err := store.RunContention(cfg)
			if err != nil {
				return fmt.Errorf("store sweep %s/%d: %w", engine, workers, err)
			}
			report.Results = append(report.Results, res)
			perOp := map[string]store.OpStats{}
			for _, op := range res.PerOp {
				perOp[op.Op] = op
			}
			table.AddRow(
				engine,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.0f", res.OpsPerSec),
				fmtLat(perOp["list"].P50),
				fmtLat(perOp["list"].P99),
				fmtLat(perOp["get"].P50),
				fmtLat(perOp["get"].P99),
			)
		}
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("store sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// fmtLat renders an engine-op latency; these are sub-millisecond, so use
// microseconds rather than the table default.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

// rpcResult is one row of the -rpc sweep: one full snapshot fetch over
// real TCP with a fixed transport mode, in-flight budget, and payload.
type rpcResult struct {
	Mode        string        `json:"mode"` // "serial" or "multiplexed"
	Budget      int           `json:"budget"`
	Payload     int           `json:"payloadBytes"`
	Elements    int           `json:"elements"`
	Batches     int64         `json:"batchRPCs"`
	Elapsed     time.Duration `json:"elapsedNs"`
	ElemsPerSec float64       `json:"elemsPerSec"`
	CallsPerSec float64       `json:"callsPerSec"`
	MeanRTT     time.Duration `json:"meanRttNs"`
	P99RTT      time.Duration `json:"p99RttNs"`
	MaxInFlight int64         `json:"maxInFlight"`
}

// rpcReport is the BENCH_rpc.json document. Speedup maps
// "payload=N/budget=B" to multiplexed-over-serial elements/sec.
type rpcReport struct {
	GOMAXPROCS       int                `json:"gomaxprocs"`
	Elements         int                `json:"elements"`
	Batch            int                `json:"batch"`
	ServiceLatencyMs float64            `json:"serviceLatencyMs"`
	Payloads         []int              `json:"payloads"`
	Budgets          []int              `json:"budgets"`
	Results          []rpcResult        `json:"results"`
	Speedup          map[string]float64 `json:"speedup"`
}

// startRPCRemote boots the sweep's "remote process": its own network,
// bus, and repository server, reachable only over loopback TCP. Every
// dispatched RPC first pays lat of simulated service time (the stand-in
// for disk or WAN work a real archive would do), which is exactly the
// latency a serialized transport eats once per round trip and a
// multiplexed transport overlaps.
func startRPCRemote(lat time.Duration, workers int) (*tcprpc.Server, func(), error) {
	const node = netsim.NodeID("archive")
	net := netsim.New(netsim.Config{})
	net.AddNode(node)
	bus := rpc.NewBus(net)
	repoSrv, err := repo.NewServer(bus, node)
	if err != nil {
		return nil, nil, err
	}
	dispatch := rpc.NewServer(node)
	for _, method := range tcprpc.RepoMethods() {
		method := method
		dispatch.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			if lat > 0 {
				time.Sleep(lat)
			}
			out, _, err := bus.Call(ctx, node, node, method, req)
			return out, err
		})
	}
	srv, err := tcprpc.ServeConfig("127.0.0.1:0", dispatch, tcprpc.ServerConfig{Workers: workers})
	if err != nil {
		repoSrv.Close()
		return nil, nil, err
	}
	cleanup := func() {
		srv.Close()
		repoSrv.Close()
	}
	return srv, cleanup, nil
}

// runRPCSweep measures the transport itself on the snapshot fetch
// workload: the full membership of an n-element collection is fetched
// through GetBatch RPCs over one TCP connection, by `budget` workers
// sharing one client. The serial mode pins the client's in-flight
// budget to 1 — the one-RPC-per-round-trip transport the repo used to
// have — so the sweep isolates what multiplexing buys at each
// concurrency level and payload size.
func runRPCSweep(jsonPath string, quick bool, serviceLat time.Duration) error {
	elements, batch := 1000, 16
	payloads := []int{256, 4096}
	budgets := []int{1, 2, 4, 8, 16}
	if quick {
		elements = 200
		payloads = []int{256}
		budgets = []int{1, 8}
	}
	maxBudget := budgets[len(budgets)-1]

	report := rpcReport{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Elements:         elements,
		Batch:            batch,
		ServiceLatencyMs: float64(serviceLat) / float64(time.Millisecond),
		Payloads:         payloads,
		Budgets:          budgets,
		Speedup:          map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("TCP transport: %d-element snapshot fetch, batch=%d, %.1fms service time per RPC",
			elements, batch, report.ServiceLatencyMs),
		"payload", "budget", "mode", "elapsed", "elems/sec", "rpc/sec", "rtt p99", "speedup")

	ctx := context.Background()
	for _, payload := range payloads {
		srv, stop, err := startRPCRemote(serviceLat, maxBudget)
		if err != nil {
			return fmt.Errorf("rpc sweep: %w", err)
		}

		// Populate the snapshot collection on the remote.
		seed := tcprpc.Dial(srv.Addr(), "seeder")
		if _, err := seed.Call(ctx, repo.MethodCreate, repo.CreateReq{Name: "snap"}); err != nil {
			seed.Close()
			stop()
			return fmt.Errorf("rpc sweep: %w", err)
		}
		for i := 0; i < elements; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, payload)}
			if _, err := seed.Call(ctx, repo.MethodPut, repo.PutReq{Obj: obj}); err == nil {
				_, err = seed.Call(ctx, repo.MethodAdd, repo.AddReq{Name: "snap", Ref: repo.Ref{ID: obj.ID, Node: "archive"}})
			}
			if err != nil {
				seed.Close()
				stop()
				return fmt.Errorf("rpc sweep: populate: %w", err)
			}
		}
		seed.Close()

		for _, budget := range budgets {
			base := 0.0
			for _, mode := range []string{"serial", "multiplexed"} {
				res, err := runRPCFetch(ctx, srv.Addr(), mode, budget, batch, elements)
				if err != nil {
					stop()
					return fmt.Errorf("rpc sweep: %s/budget=%d: %w", mode, budget, err)
				}
				res.Payload = payload
				report.Results = append(report.Results, res)

				speedup := "-"
				if mode == "serial" {
					base = res.ElemsPerSec
				} else if base > 0 {
					ratio := res.ElemsPerSec / base
					report.Speedup[fmt.Sprintf("payload=%d/budget=%d", payload, budget)] = ratio
					speedup = fmt.Sprintf("%.1fx", ratio)
				}
				table.AddRow(
					fmt.Sprintf("%dB", payload),
					fmt.Sprintf("%d", budget),
					mode,
					res.Elapsed.Round(time.Millisecond).String(),
					fmt.Sprintf("%.0f", res.ElemsPerSec),
					fmt.Sprintf("%.0f", res.CallsPerSec),
					metrics.FmtDur(res.P99RTT),
					speedup,
				)
			}
		}
		stop()
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("rpc sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("rpc sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("rpc sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// runRPCFetch performs one timed snapshot fetch: list the membership,
// split it into GetBatch calls of `batch` ids, and drain them with
// `budget` workers sharing one client. In serial mode the client's
// in-flight budget is pinned to 1 so the wire carries one RPC at a time
// no matter how many workers queue behind it.
func runRPCFetch(ctx context.Context, addr, mode string, budget, batch, elements int) (rpcResult, error) {
	client := tcprpc.Dial(addr, fmt.Sprintf("bench-%s-%d", mode, budget))
	if mode == "serial" {
		client.MaxInflight = 1
	}
	defer client.Close()

	out, err := client.Call(ctx, repo.MethodList, repo.ListReq{Name: "snap"})
	if err != nil {
		return rpcResult{}, err
	}
	members := out.(repo.ListResp).Members
	if len(members) != elements {
		return rpcResult{}, fmt.Errorf("snapshot lists %d members, want %d", len(members), elements)
	}
	batches := make(chan []repo.ObjectID, (len(members)+batch-1)/batch)
	for lo := 0; lo < len(members); lo += batch {
		hi := lo + batch
		if hi > len(members) {
			hi = len(members)
		}
		ids := make([]repo.ObjectID, 0, hi-lo)
		for _, ref := range members[lo:hi] {
			ids = append(ids, ref.ID)
		}
		batches <- ids
	}
	close(batches)

	var (
		wg      sync.WaitGroup
		fetched atomic.Int64
		firstMu sync.Mutex
		callErr error
	)
	start := time.Now()
	for w := 0; w < budget; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ids := range batches {
				out, err := client.Call(ctx, repo.MethodGetBatch, repo.GetBatchReq{IDs: ids})
				if err != nil {
					firstMu.Lock()
					if callErr == nil {
						callErr = err
					}
					firstMu.Unlock()
					return
				}
				fetched.Add(int64(len(out.(repo.GetBatchResp).Objects)))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if callErr != nil {
		return rpcResult{}, callErr
	}
	if got := fetched.Load(); got != int64(elements) {
		return rpcResult{}, fmt.Errorf("fetched %d elements, want %d", got, elements)
	}

	st := client.Stats()
	res := rpcResult{
		Mode:        mode,
		Budget:      budget,
		Elements:    elements,
		Elapsed:     elapsed,
		MaxInFlight: st.MaxInFlight,
	}
	for _, m := range st.Methods {
		if m.Method == repo.MethodGetBatch {
			res.Batches = m.Count
			res.MeanRTT = m.Mean
			res.P99RTT = m.P99
		}
	}
	if s := elapsed.Seconds(); s > 0 {
		res.ElemsPerSec = float64(elements) / s
		res.CallsPerSec = float64(res.Batches) / s
	}
	return res, nil
}

// iterResult is one row of the -iter sweep: one iterator run over a
// populated collection with a fixed fetch configuration.
type iterResult struct {
	Semantics   string        `json:"semantics"`
	Elements    int           `json:"elements"`
	Mode        string        `json:"mode"` // "batched" or "per-object"
	Yielded     int           `json:"yielded"`
	Virtual     time.Duration `json:"virtualNs"`
	ElemsPerSec float64       `json:"elemsPerSec"` // per virtual second
	GetRPCs     int64         `json:"getRPCs"`
	BatchRPCs   int64         `json:"getBatchRPCs"`
	ListRPCs    int64         `json:"listRPCs"`
}

// iterReport is the BENCH_iter.json document. Speedup maps
// "semantics/elements" to batched-over-baseline elements/sec.
type iterReport struct {
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Engine       string             `json:"engine"`
	StorageNodes int                `json:"storageNodes"`
	Seed         int64              `json:"seed"`
	Scale        float64            `json:"scale"`
	LatencyMs    float64            `json:"oneWayLatencyMs"`
	Batch        int                `json:"batch"`
	Inflight     int                `json:"inflight"`
	Results      []iterResult       `json:"results"`
	Speedup      map[string]float64 `json:"speedup"`
}

// runIterSweep measures the elements hot path: elements/sec (in virtual
// time) for the batched, pipelined fetch pipeline against the
// one-Get-per-element baseline, per semantics and set size, with members
// spread round-robin across the storage nodes. RPC counts come from the
// bus, so the round-trip savings are visible next to the throughput.
func runIterSweep(jsonPath string, quick bool, seed int64, scale sim.TimeScale) error {
	sizes := []int{100, 1000}
	if quick {
		sizes = []int{64}
	}
	const (
		storageNodes = 4
		latency      = 10 * time.Millisecond
	)
	fetch := core.FetchOptions{}.WithDefaults()
	if scale == 0 {
		scale = sim.DefaultScale
	}

	report := iterReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		StorageNodes: storageNodes,
		Seed:         seed,
		Scale:        float64(scale),
		LatencyMs:    float64(latency) / float64(time.Millisecond),
		Batch:        fetch.Batch,
		Inflight:     fetch.Inflight,
		Speedup:      map[string]float64{},
	}
	table := metrics.NewTable(
		fmt.Sprintf("Iterator fetch pipeline: batch=%d inflight=%d, %d storage nodes, %v one-way",
			fetch.Batch, fetch.Inflight, storageNodes, latency),
		"semantics", "elements", "mode", "virtual time", "elems/sec", "Get", "GetBatch", "speedup")

	ctx := context.Background()
	for _, size := range sizes {
		c, err := cluster.New(cluster.Config{
			StorageNodes: storageNodes,
			Seed:         seed,
			Scale:        scale,
			Latency:      sim.Fixed(latency),
		})
		if err != nil {
			return fmt.Errorf("iter sweep: %w", err)
		}
		coll := fmt.Sprintf("iter%d", size)
		if err := c.Client.CreateCollection(ctx, cluster.DirNode, coll); err != nil {
			c.Close()
			return fmt.Errorf("iter sweep: %w", err)
		}
		for i := 0; i < size; i++ {
			obj := repo.Object{ID: repo.ObjectID(fmt.Sprintf("e%04d", i)), Data: make([]byte, 256)}
			ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
			if err == nil {
				err = c.Client.Add(ctx, cluster.DirNode, coll, ref)
			}
			if err != nil {
				c.Close()
				return fmt.Errorf("iter sweep: populate: %w", err)
			}
		}
		if report.Engine == "" {
			es, err := c.Client.StoreStats(ctx, cluster.DirNode)
			if err != nil {
				c.Close()
				return fmt.Errorf("iter sweep: %w", err)
			}
			report.Engine = es.Engine
		}

		for _, sem := range []core.Semantics{core.Snapshot, core.GrowOnly} {
			base := 0.0
			for _, mode := range []string{"per-object", "batched"} {
				set, err := core.NewSet(c.Client, cluster.DirNode, coll, core.Options{
					Semantics: sem,
					Fetch:     core.FetchOptions{Disable: mode == "per-object"},
				})
				if err != nil {
					c.Close()
					return fmt.Errorf("iter sweep: %w", err)
				}
				gets := c.Bus.MethodCalls(repo.MethodGet)
				batches := c.Bus.MethodCalls(repo.MethodGetBatch)
				lists := c.Bus.MethodCalls(repo.MethodList)
				elapsed := scale.Stopwatch()
				elems, err := set.Collect(ctx)
				virtual := elapsed()
				if err != nil {
					c.Close()
					return fmt.Errorf("iter sweep: %s/%s/%d: %w", sem, mode, size, err)
				}
				res := iterResult{
					Semantics: sem.String(),
					Elements:  size,
					Mode:      mode,
					Yielded:   len(elems),
					Virtual:   virtual,
					GetRPCs:   c.Bus.MethodCalls(repo.MethodGet) - gets,
					BatchRPCs: c.Bus.MethodCalls(repo.MethodGetBatch) - batches,
					ListRPCs:  c.Bus.MethodCalls(repo.MethodList) - lists,
				}
				if virtual > 0 {
					res.ElemsPerSec = float64(res.Yielded) / virtual.Seconds()
				}
				report.Results = append(report.Results, res)

				speedup := "-"
				if mode == "per-object" {
					base = res.ElemsPerSec
				} else if base > 0 {
					ratio := res.ElemsPerSec / base
					report.Speedup[fmt.Sprintf("%s/%d", sem, size)] = ratio
					speedup = fmt.Sprintf("%.1fx", ratio)
				}
				table.AddRow(
					sem.String(),
					fmt.Sprintf("%d", size),
					mode,
					virtual.Round(time.Millisecond).String(),
					fmt.Sprintf("%.0f", res.ElemsPerSec),
					fmt.Sprintf("%d", res.GetRPCs),
					fmt.Sprintf("%d", res.BatchRPCs),
					speedup,
				)
			}
		}
		c.Close()
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("iter sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("iter sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("iter sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}
