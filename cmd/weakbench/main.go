// Command weakbench runs the weak-sets evaluation: every experiment E1–E8
// from DESIGN.md §4 (the evaluation the paper promises in §5), printing one
// table per experiment.
//
// Usage:
//
//	weakbench [-run E1,E5] [-quick] [-seed 42] [-scale 0.01]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"weaksets/internal/experiments"
	"weaksets/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = fs.Bool("quick", false, "trimmed sweeps")
		ablations = fs.Bool("ablations", false, "also run the design-choice ablations and extensions A1-A4")
		seed      = fs.Int64("seed", 42, "random seed")
		scale     = fs.Float64("scale", 0.01, "virtual-to-real time scale (0.01 = 100x compression)")
		csvOut    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		list      = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%s  %s\n", e.ID, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{
		Seed:  *seed,
		Scale: sim.TimeScale(*scale),
		Quick: *quick,
	}

	selected := experiments.All()
	if *ablations {
		selected = append(selected, experiments.Ablations()...)
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			exp, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, exp)
		}
	}

	for i, exp := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s — %s\n", exp.ID, exp.Claim)
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if *csvOut {
			if err := table.RenderCSV(os.Stdout); err != nil {
				return fmt.Errorf("%s: render csv: %w", exp.ID, err)
			}
		} else {
			table.Render(os.Stdout)
			fmt.Printf("(%s ran in %v wall time; durations in tables are virtual)\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
