// Command weakbench runs the weak-sets evaluation: every experiment E1–E8
// from DESIGN.md §4 (the evaluation the paper promises in §5), printing one
// table per experiment. With -store it instead sweeps the storage-engine
// contention benchmark (locked vs sharded across worker counts) and writes
// the machine-readable results to BENCH_store.json.
//
// Usage:
//
//	weakbench [-run E1,E5] [-quick] [-seed 42] [-scale 0.01]
//	weakbench -store [-store-json BENCH_store.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"weaksets/internal/experiments"
	"weaksets/internal/metrics"
	"weaksets/internal/sim"
	"weaksets/internal/store"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakbench", flag.ContinueOnError)
	var (
		runIDs    = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick     = fs.Bool("quick", false, "trimmed sweeps")
		ablations = fs.Bool("ablations", false, "also run the design-choice ablations and extensions A1-A4")
		seed      = fs.Int64("seed", 42, "random seed")
		scale     = fs.Float64("scale", 0.01, "virtual-to-real time scale (0.01 = 100x compression)")
		csvOut    = fs.Bool("csv", false, "emit tables as CSV instead of aligned text")
		list      = fs.Bool("list", false, "list experiments and exit")
		storeRun  = fs.Bool("store", false, "run the storage-engine contention sweep instead of experiments")
		storeJSON = fs.String("store-json", "BENCH_store.json", "where -store writes its machine-readable results")
		storeQk   = fs.Bool("store-quick", false, "trim the -store sweep (fewer ops per worker)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *storeRun {
		return runStoreSweep(*storeJSON, *storeQk)
	}

	if *list {
		for _, e := range append(experiments.All(), experiments.Ablations()...) {
			fmt.Printf("%s  %s\n", e.ID, e.Claim)
		}
		return nil
	}

	cfg := experiments.Config{
		Seed:  *seed,
		Scale: sim.TimeScale(*scale),
		Quick: *quick,
	}

	selected := experiments.All()
	if *ablations {
		selected = append(selected, experiments.Ablations()...)
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			exp, ok := experiments.Find(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, exp)
		}
	}

	for i, exp := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s — %s\n", exp.ID, exp.Claim)
		start := time.Now()
		table, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		if *csvOut {
			if err := table.RenderCSV(os.Stdout); err != nil {
				return fmt.Errorf("%s: render csv: %w", exp.ID, err)
			}
		} else {
			table.Render(os.Stdout)
			fmt.Printf("(%s ran in %v wall time; durations in tables are virtual)\n", exp.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// storeReport is the BENCH_store.json document: one contention sweep over
// both engines at increasing worker counts.
type storeReport struct {
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Config     store.ContentionConfig   `json:"config"`
	Results    []store.ContentionResult `json:"results"`
}

// runStoreSweep measures locked vs sharded throughput on the read-heavy
// List+Get mix at 1..GOMAXPROCS workers and writes the results to
// jsonPath. The sharded engine should scale with workers; the
// single-mutex baseline should flatten.
func runStoreSweep(jsonPath string, quick bool) error {
	base := store.ContentionConfig{
		Objects:      1024,
		Members:      256,
		OpsPerWorker: 100000,
		WriteEvery:   64,
	}
	if quick {
		base.OpsPerWorker = 20000
	}

	// Sweep past GOMAXPROCS so lock contention shows even on small
	// machines: oversubscribed workers still pile up on the global mutex.
	procs := runtime.GOMAXPROCS(0)
	maxWorkers := procs
	if maxWorkers < 8 {
		maxWorkers = 8
	}
	var workerCounts []int
	for w := 1; w < maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	workerCounts = append(workerCounts, maxWorkers)

	report := storeReport{GOMAXPROCS: procs, Config: base}
	table := metrics.NewTable(
		fmt.Sprintf("Store contention: List+Get mix, 1/%d writes (GOMAXPROCS=%d)", base.WriteEvery, procs),
		"engine", "workers", "ops/sec", "list p50", "list p99", "get p50", "get p99")
	for _, engine := range []string{"locked", "sharded"} {
		for _, workers := range workerCounts {
			cfg := base
			cfg.Engine = engine
			cfg.Workers = workers
			res, err := store.RunContention(cfg)
			if err != nil {
				return fmt.Errorf("store sweep %s/%d: %w", engine, workers, err)
			}
			report.Results = append(report.Results, res)
			perOp := map[string]store.OpStats{}
			for _, op := range res.PerOp {
				perOp[op.Op] = op
			}
			table.AddRow(
				engine,
				fmt.Sprintf("%d", workers),
				fmt.Sprintf("%.0f", res.OpsPerSec),
				fmtLat(perOp["list"].P50),
				fmtLat(perOp["list"].P99),
				fmtLat(perOp["get"].P50),
				fmtLat(perOp["get"].P99),
			)
		}
	}
	table.Render(os.Stdout)

	f, err := os.Create(jsonPath)
	if err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("store sweep: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store sweep: %w", err)
	}
	fmt.Printf("wrote %s (%d results)\n", jsonPath, len(report.Results))
	return nil
}

// fmtLat renders an engine-op latency; these are sub-millisecond, so use
// microseconds rather than the table default.
func fmtLat(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}
