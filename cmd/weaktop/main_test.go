package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const clusterFixture = `{
  "nodes": [
    {"name": "local", "node": "dir", "ok": true},
    {"name": "b", "url": "http://peer:8081", "ok": false, "error": "connection refused"}
  ],
  "collections": [{
    "collection": "menus",
    "nodes": 2,
    "aggregate": {"runs": 12, "yielded": 240, "unreachableSkipped": 3, "ghostsServed": 1, "listingSkew": 2, "partitionSkew": 0,
                  "replicaSkew": 5, "replicaServed": 100, "maxGhostAgeNs": 12000000},
    "windows": {
      "latency": {"count": 12, "p50Ns": 2000000, "p95Ns": 9000000, "p99Ns": 12000000, "maxNs": 12000000,
                  "exemplar": {"trace": "00000000000000aa", "valueNs": 12000000}},
      "listing_skew": {"count": 12, "p50Ns": 0, "p95Ns": 1, "p99Ns": 2, "maxNs": 2}
    }
  }]
}`

func TestRunOnce(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(clusterFixture))
	}))
	defer srv.Close()

	var out strings.Builder
	if err := run([]string{"-url", srv.URL, "-once"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "\x1b[2J") {
		t.Error("-once must not clear the screen")
	}
	for _, s := range []string{
		"nodes 1/2 up",
		"DOWN",               // the per-node status table flags the dead peer...
		"connection refused", // ...with the gateway's classified error
		"menus",
		"latency",
		"00000000000000aa", // the p99 exemplar trace id, ready for /trace?id=
		"listing_skew",
		"runs 12",
		"served 100", // the replicas row surfaces replica-read accounting
		"skew 5",
	} {
		if !strings.Contains(text, s) {
			t.Errorf("rendered table missing %q:\n%s", s, text)
		}
	}
	// Duration windows render as durations, count windows as raw counts.
	if !strings.Contains(text, "2ms") {
		t.Errorf("latency p50 not rendered as a duration:\n%s", text)
	}
}

func TestRunFetchError(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-url", "http://127.0.0.1:1", "-once"}, &out); err == nil {
		t.Fatal("expected an error against a dead gateway")
	}
}
