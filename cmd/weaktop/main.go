// Command weaktop is a terminal poller for the weakness plane: it asks a
// gateway's GET /cluster for the merged fleet view every interval and
// renders one table — collections down, weakness quantiles across — the
// way top renders processes. Point it at any weakwww gateway; peers
// registered there (-peers) are folded in by the gateway itself.
//
//	weaktop -url http://127.0.0.1:8080
//	weaktop -url http://127.0.0.1:8080 -once   # one snapshot, no screen clears
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"weaksets/internal/obs"
)

// countMetrics are the windows whose values are per-run counts, not
// durations — rendered as raw numbers.
var countMetrics = func() map[string]bool {
	m := make(map[string]bool, len(obs.WindowEventMetrics))
	for _, name := range obs.WindowEventMetrics {
		m[name] = true
	}
	return m
}()

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "weaktop:", err)
		os.Exit(1)
	}
}

// clusterView mirrors the gateway's GET /cluster document (the fields
// weaktop renders).
type clusterView struct {
	Nodes []struct {
		Name  string `json:"name"`
		URL   string `json:"url"`
		Node  string `json:"node"`
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	} `json:"nodes"`
	Collections []struct {
		Collection string `json:"collection"`
		Nodes      int    `json:"nodes"`
		Aggregate  struct {
			Runs               int64 `json:"runs"`
			Yielded            int64 `json:"yielded"`
			UnreachableSkipped int64 `json:"unreachableSkipped"`
			GhostsServed       int64 `json:"ghostsServed"`
			ListingSkew        int64 `json:"listingSkew"`
			PartitionSkew      int64 `json:"partitionSkew"`
			ReplicaSkew        int64 `json:"replicaSkew"`
			ReplicaServed      int64 `json:"replicaServed"`
			MaxGhostAge        int64 `json:"maxGhostAgeNs"`
		} `json:"aggregate"`
		Windows map[string]struct {
			Count    int64         `json:"count"`
			P50      time.Duration `json:"p50Ns"`
			P95      time.Duration `json:"p95Ns"`
			P99      time.Duration `json:"p99Ns"`
			Max      time.Duration `json:"maxNs"`
			Exemplar *struct {
				Trace string `json:"trace"`
			} `json:"exemplar"`
		} `json:"windows"`
	} `json:"collections"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("weaktop", flag.ContinueOnError)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "gateway base URL (its /cluster is polled)")
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		once     = fs.Bool("once", false, "print one snapshot and exit (no screen clears)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for {
		view, err := fetch(*url)
		if err != nil {
			return err
		}
		if !*once {
			// ANSI clear + home, like top: the table repaints in place.
			fmt.Fprint(out, "\x1b[2J\x1b[H")
		}
		render(out, *url, view)
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

func fetch(baseURL string) (clusterView, error) {
	resp, err := http.Get(baseURL + "/cluster")
	if err != nil {
		return clusterView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return clusterView{}, fmt.Errorf("GET /cluster: status %d", resp.StatusCode)
	}
	var view clusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return clusterView{}, err
	}
	return view, nil
}

// render paints one /cluster snapshot: a node status line, then one row
// per collection x windowed metric with the merged quantiles and the p99
// exemplar trace (feed it to /trace?id= to see why the tail is slow).
func render(out io.Writer, url string, view clusterView) {
	up := 0
	for _, n := range view.Nodes {
		if n.OK {
			up++
		}
	}
	fmt.Fprintf(out, "weaktop  %s  %s  nodes %d/%d up\n", url, time.Now().Format("15:04:05"), up, len(view.Nodes))

	// One row per gateway node. A down peer keeps its classified error
	// (the gateway distinguishes a timed-out peer from a refused one) so
	// the table says *how* a node is failing, not just that it is.
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tSTATUS\tDETAIL")
	for _, n := range view.Nodes {
		switch {
		case n.OK:
			fmt.Fprintf(tw, "%s\tup\tnode %s\n", n.Name, n.Node)
		default:
			detail := n.Error
			if detail == "" {
				detail = "unreachable"
			}
			fmt.Fprintf(tw, "%s\tDOWN\t%s\n", n.Name, detail)
		}
	}
	_ = tw.Flush()
	fmt.Fprintln(out)

	tw = tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COLLECTION\tMETRIC\tN\tP50\tP95\tP99\tMAX\tEXEMPLAR")
	for _, c := range view.Collections {
		metricNames := make([]string, 0, len(c.Windows))
		for name := range c.Windows {
			metricNames = append(metricNames, name)
		}
		sort.Strings(metricNames)
		for _, name := range metricNames {
			win := c.Windows[name]
			if win.Count == 0 {
				continue
			}
			ex := "-"
			if win.Exemplar != nil && win.Exemplar.Trace != "" {
				ex = win.Exemplar.Trace
			}
			if countMetrics[name] {
				// Count-valued windows: render raw per-run counts.
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
					c.Collection, name, win.Count, win.P50, win.P95, win.P99, win.Max, ex)
				continue
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
				c.Collection, name, win.Count,
				fmtDur(win.P50), fmtDur(win.P95), fmtDur(win.P99), fmtDur(win.Max), ex)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\truns %d\tyield %d\tskip %d\tghost %d\tskew %d/%d\n",
			c.Collection, "lifetime", c.Nodes,
			c.Aggregate.Runs, c.Aggregate.Yielded, c.Aggregate.UnreachableSkipped,
			c.Aggregate.GhostsServed, c.Aggregate.ListingSkew, c.Aggregate.PartitionSkew)
		if c.Aggregate.ReplicaServed > 0 || c.Aggregate.ReplicaSkew > 0 {
			fmt.Fprintf(tw, "%s\t%s\t%d\tserved %d\tskew %d\tghost-age %s\t\t\n",
				c.Collection, "replicas", c.Nodes,
				c.Aggregate.ReplicaServed, c.Aggregate.ReplicaSkew,
				fmtDur(time.Duration(c.Aggregate.MaxGhostAge)))
		}
	}
	_ = tw.Flush()
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
