// Command weakls demonstrates dynamic sets in their original habitat
// (§1.1 of the paper): listing a directory of a simulated wide-area file
// system. It builds a distributed directory whose files are scattered over
// storage nodes at different distances, optionally partitions some nodes
// away, and then runs both the traditional strict ls and the dynamic-set
// ls side by side.
//
// Usage:
//
//	weakls [-files 32] [-cut 2] [-width 8] [-scale 0.01]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/dynapi"
	"weaksets/internal/fsim"
	"weaksets/internal/metrics"
	"weaksets/internal/obs"
	"weaksets/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakls:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakls", flag.ContinueOnError)
	var (
		files   = fs.Int("files", 32, "files in the directory")
		cut     = fs.Int("cut", 2, "storage nodes to partition away")
		width   = fs.Int("width", 8, "dynamic-set prefetch width")
		scale   = fs.Float64("scale", 0.01, "virtual-to-real time scale")
		pattern = fs.String("pattern", "/pub/doc00*.txt", "glob pattern for the dynamic-sets API demo (empty to skip)")
		trace   = fs.Bool("trace", false, "print the dynamic-set run's span trace and weakness report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := cluster.New(cluster.Config{
		StorageNodes: 8,
		Seed:         7,
		Scale:        sim.TimeScale(*scale),
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	var (
		tracer   *obs.Tracer
		weakness *obs.Registry
	)
	if *trace {
		tracer = obs.NewTracer("weakls", obs.Config{})
		weakness = obs.NewRegistry()
		c.UseTracer(tracer)
	}
	for i, node := range c.Storage {
		c.Net.SetLinkLatency(cluster.HomeNode, node, sim.Fixed(time.Duration(i+1)*5*time.Millisecond))
	}

	ctx := context.Background()
	dfs := fsim.New(c.Client)
	if err := dfs.Mkdir(ctx, "", cluster.DirNode, "/"); err != nil {
		return err
	}
	if err := dfs.Mkdir(ctx, cluster.DirNode, cluster.DirNode, "/pub"); err != nil {
		return err
	}
	for i := 0; i < *files; i++ {
		p := fmt.Sprintf("/pub/doc%03d.txt", i)
		body := fmt.Sprintf("document %d, stored on %s", i, c.StorageFor(i))
		if _, err := dfs.WriteFile(ctx, cluster.DirNode, c.StorageFor(i), p, []byte(body)); err != nil {
			return err
		}
	}
	fmt.Printf("built /pub with %d files over %d storage nodes (5–40ms away)\n", *files, len(c.Storage))

	if *cut > len(c.Storage) {
		*cut = len(c.Storage)
	}
	for i := 0; i < *cut; i++ {
		c.Net.Isolate(c.Storage[len(c.Storage)-1-i])
	}
	if *cut > 0 {
		fmt.Printf("partitioned away %d storage node(s)\n\n", *cut)
	}

	ts := sim.TimeScale(*scale)

	// Traditional ls: ordered, all-or-nothing.
	fmt.Println("$ ls -l /pub            # strict: fetch everything, in order")
	elapsed := ts.Stopwatch()
	entries, err := dfs.LsStrict(ctx, cluster.DirNode, "/pub")
	if err != nil {
		fmt.Printf("  ls: error after %d entries, %s: %v\n\n",
			len(entries), metrics.FmtDur(elapsed()), err)
	} else {
		fmt.Printf("  %d entries in %s\n\n", len(entries), metrics.FmtDur(elapsed()))
	}

	// Dynamic-set ls: parallel, closest first, partial results.
	fmt.Printf("$ weakls /pub           # dynamic set: width %d, closest first\n", *width)
	elapsed = ts.Stopwatch()
	ds, err := dfs.LsDyn(ctx, cluster.DirNode, "/pub", core.DynOptions{Width: *width, Tracer: tracer, Weakness: weakness})
	if err != nil {
		return err
	}
	defer func() { _ = ds.Close() }()
	n := 0
	for ds.Next(ctx) {
		e := fsim.EntryFromElement(ds.Element())
		n++
		if n <= 5 {
			fmt.Printf("  %-14s %4d bytes  (%s after open)\n", e.Name, len(e.Data), metrics.FmtDur(elapsed()))
		} else if n == 6 {
			fmt.Println("  ...")
		}
	}
	total := elapsed()
	fmt.Printf("  %d entries in %s", n, metrics.FmtDur(total))
	if skipped := ds.Skipped(); len(skipped) > 0 {
		fmt.Printf("; %d unreachable entries skipped", len(skipped))
	}
	fmt.Println()

	if *trace {
		_ = ds.Close()
		fmt.Println()
		obs.RenderWeakness(os.Stdout, ds.Weakness())
		fmt.Println()
		obs.RenderTrace(os.Stdout, tracer.Trace(ds.TraceID()))
	}

	if *pattern != "" {
		// The Unix-flavoured dynamic-sets API (setOpen / setIterate /
		// setClose) with a glob pattern.
		fmt.Printf("\n$ setOpen(%q)       # dynamic-sets API, width %d\n", *pattern, *width)
		api := dynapi.New(c.Client)
		api.Mount("/", cluster.DirNode)
		defer api.CloseAll()
		elapsed = ts.Stopwatch()
		sd, err := api.SetOpen(ctx, *pattern, core.DynOptions{Width: *width})
		if err != nil {
			return err
		}
		matched := 0
		for {
			entry, ok, err := api.SetIterate(ctx, sd)
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			matched++
			if matched <= 5 {
				fmt.Printf("  %-14s %4d bytes  (%s after open)\n", entry.Name, len(entry.Data), metrics.FmtDur(elapsed()))
			} else if matched == 6 {
				fmt.Println("  ...")
			}
		}
		fmt.Printf("  %d matching entries in %s\n", matched, metrics.FmtDur(elapsed()))
		if err := api.SetClose(sd); err != nil {
			return err
		}
	}
	return nil
}
