package main

import "testing"

func TestRunHealthy(t *testing.T) {
	if err := run([]string{"-files", "8", "-cut", "0", "-scale", "0.002"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPartition(t *testing.T) {
	if err := run([]string{"-files", "8", "-cut", "2", "-scale", "0.002", "-pattern", "/pub/doc00?.txt"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoPattern(t *testing.T) {
	if err := run([]string{"-files", "4", "-cut", "0", "-scale", "0.002", "-pattern", ""}); err != nil {
		t.Fatal(err)
	}
}
