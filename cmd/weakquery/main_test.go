package main

import "testing"

func TestRunDefaultQuery(t *testing.T) {
	if err := run([]string{"-n", "10", "-scale", "0.002"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDynamicWithCut(t *testing.T) {
	if err := run([]string{"-n", "10", "-dynamic", "-cut", "1", "-scale", "0.002"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLibrarySnapshot(t *testing.T) {
	if err := run([]string{"-corpus", "library", "-q", `author == "wing"`, "-sem", "snapshot", "-scale", "0.002"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	if err := run([]string{"-corpus", "nope"}); err == nil {
		t.Fatal("bad corpus accepted")
	}
	if err := run([]string{"-sem", "nope", "-scale", "0.002"}); err == nil {
		t.Fatal("bad semantics accepted")
	}
	if err := run([]string{"-q", `broken ==`, "-scale", "0.002"}); err == nil {
		t.Fatal("bad predicate accepted")
	}
}
