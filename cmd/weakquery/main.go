// Command weakquery runs database-like predicate queries (§1.1 of the
// paper) over a simulated wide-area corpus, under any weak-set semantics
// or on a dynamic set, with optional partitions — a workbench for feeling
// out the design space from the command line.
//
// Usage:
//
//	weakquery -corpus restaurants -n 40 -q 'cuisine == "chinese"'
//	weakquery -corpus library -q 'author == "wing" && year >= 1990' -sem snapshot
//	weakquery -corpus faces -q 'dept == "cs"' -dynamic -cut 2
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/obs"
	"weaksets/internal/query"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "weakquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("weakquery", flag.ContinueOnError)
	var (
		corpusName = fs.String("corpus", "restaurants", "corpus: restaurants | library | faces")
		n          = fs.Int("n", 40, "corpus size (restaurants/faces)")
		q          = fs.String("q", `cuisine == "chinese"`, "predicate expression")
		semName    = fs.String("sem", "optimistic", "semantics (see weakbench tables) when not -dynamic")
		dynamic    = fs.Bool("dynamic", false, "run on a dynamic set (parallel, closest-first)")
		width      = fs.Int("width", 8, "dynamic-set prefetch width")
		cut        = fs.Int("cut", 0, "storage nodes to partition away")
		scale      = fs.Float64("scale", 0.01, "virtual-to-real time scale")
		seed       = fs.Int64("seed", 11, "random seed")
		lease      = fs.Bool("lease", false, "hold an invalidation lease on the corpus before querying")
		trace      = fs.Bool("trace", false, "print the run's span trace and weakness report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	c, err := cluster.New(cluster.Config{
		StorageNodes: 6,
		Seed:         *seed,
		Scale:        sim.TimeScale(*scale),
		Latency:      sim.Fixed(15 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	var (
		tracer   *obs.Tracer
		weakness *obs.Registry
	)
	if *trace {
		tracer = obs.NewTracer("weakquery", obs.Config{})
		weakness = obs.NewRegistry()
		c.UseTracer(tracer)
	}

	var corpus wais.Corpus
	switch *corpusName {
	case "restaurants":
		corpus, err = wais.BuildRestaurants(ctx, c, *n)
	case "faces":
		corpus, err = wais.BuildFaces(ctx, c, *n)
	case "library":
		corpus, err = wais.BuildLibrary(ctx, c, []string{"wing", "steere", "liskov", "lamport"}, 10)
	default:
		return fmt.Errorf("unknown corpus %q", *corpusName)
	}
	if err != nil {
		return err
	}
	fmt.Printf("corpus %q: %d objects over %d nodes\n", *corpusName, len(corpus.Refs), len(c.Storage))

	for i := 0; i < *cut && i < len(c.Storage); i++ {
		c.Net.Isolate(c.Storage[len(c.Storage)-1-i])
	}
	if *cut > 0 {
		fmt.Printf("partitioned away %d node(s)\n", *cut)
	}

	// A lease pays off on repeated reads; a one-shot query holds one only
	// when asked, mostly to let the flag demonstrate the zero-RPC rerun.
	var ls *repo.LeaseState
	if *lease {
		ls = repo.NewLeaseState(c.Client, corpus.Dir, corpus.Coll)
		if err := ls.Start(ctx); err != nil {
			return fmt.Errorf("lease start: %w", err)
		}
		defer ls.Stop()
		c.Client.UseLeases(ls)
		fmt.Printf("holding an invalidation lease on %q\n", corpus.Coll)
	}

	qry, err := query.New(c.Client, corpus.Dir, corpus.Coll, *q)
	if err != nil {
		return err
	}
	opts := query.Options{}
	mode := ""
	if *dynamic {
		opts.Dynamic = true
		opts.DynOptions = core.DynOptions{Width: *width, Tracer: tracer, Weakness: weakness}
		mode = fmt.Sprintf("dynamic set (width %d)", *width)
	} else {
		sem, ok := core.SemanticsByName(*semName)
		if !ok {
			return fmt.Errorf("unknown semantics %q", *semName)
		}
		opts.Semantics = sem
		opts.SetOptions = core.Options{
			LockServer: c.LockNode,
			MaxBlock:   2 * time.Second,
			Tracer:     tracer,
			Weakness:   weakness,
		}
		mode = sem.String()
	}

	fmt.Printf("query %s under %s:\n", qry.Predicate(), mode)
	elapsed := sim.TimeScale(*scale).Stopwatch()
	matches := 0
	examined, err := qry.Stream(ctx, opts, func(r query.Result) bool {
		matches++
		if matches <= 10 {
			fmt.Printf("  %-16s @ %-4s %v\n", r.Element.Ref.ID, r.Element.Ref.Node, r.Element.Attrs)
		} else if matches == 11 {
			fmt.Println("  ...")
		}
		return true
	})
	total := elapsed()

	fmt.Printf("%d matches of %d examined in %s (virtual)\n", matches, examined, metrics.FmtDur(total))
	switch {
	case err == nil:
		fmt.Println("outcome: returns (normal termination)")
	case errors.Is(err, core.ErrFailure):
		fmt.Println("outcome: fails — the paper's failure exception (unreachable members remain)")
	case errors.Is(err, core.ErrBlocked):
		fmt.Println("outcome: blocked — optimistic patience exhausted waiting for a repair")
	default:
		return err
	}
	if ls != nil {
		st := ls.Stats()
		fmt.Printf("lease: %d held, %d grants, %d renewals, %d invalidations pushed\n",
			st.Held, st.Grants, st.Renewals, st.Invalidations)
	}
	if *trace {
		fmt.Println()
		if rep, ok := weakness.Last(corpus.Coll); ok {
			obs.RenderWeakness(os.Stdout, rep)
			fmt.Println()
			obs.RenderTrace(os.Stdout, tracer.Trace(rep.Trace))
		} else {
			fmt.Println("(no weakness report recorded)")
		}
	}
	return nil
}
