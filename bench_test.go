// Package weaksets' root benchmark suite: one testing.B benchmark per
// experiment E1–E9 (see DESIGN.md §4 and EXPERIMENTS.md for the full
// tables; cmd/weakbench prints them), plus micro-benchmarks of the
// substrate hot paths. Experiment benchmarks run the trimmed (Quick)
// sweeps; use cmd/weakbench for the full grids.
package weaksets

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/experiments"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/sim"
	"weaksets/internal/spec"
	"weaksets/internal/store"
	"weaksets/internal/tcprpc"
)

func benchConfig(seed int64) experiments.Config {
	return experiments.Config{Seed: seed, Scale: 0.01, Quick: true}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := exp.Run(benchConfig(int64(i)))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows()) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1FirstYield regenerates E1: time-to-first-element and
// completion per semantics (§1.1 claims).
func BenchmarkE1FirstYield(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2Availability regenerates E2: completion and coverage under
// partitions (§3, §3.4 claims).
func BenchmarkE2Availability(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3LockCost regenerates E3: writer stall under reader locks
// (§3.1 claim).
func BenchmarkE3LockCost(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4Staleness regenerates E4: lost mutations and stale yields
// (§3.2, §3.4 claims).
func BenchmarkE4Staleness(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5Prefetch regenerates E5: dynamic-set ls vs sequential stat
// (§1.1 claim).
func BenchmarkE5Prefetch(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6Conformance regenerates E6: the implementation-vs-spec
// conformance matrix (§3 lattice).
func BenchmarkE6Conformance(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7GrowRace regenerates E7: grow-only termination race (§3.3
// claim).
func BenchmarkE7GrowRace(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8Ghosts regenerates E8: ghost-copy accounting (§3.3 claim).
func BenchmarkE8Ghosts(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9QuorumDirectory regenerates E9: single vs majority-quorum
// directory availability (§3.3 quorum variant).
func BenchmarkE9QuorumDirectory(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkKernelStep measures the pure semantic kernel: one decision over
// a 64-element pre-state.
func BenchmarkKernelStep(b *testing.B) {
	members := make([]spec.ElemID, 64)
	for i := range members {
		members[i] = spec.ElemID(fmt.Sprintf("e%03d", i))
	}
	pre := spec.NewState(members, members)
	yielded := make(map[spec.ElemID]bool)
	for i := 0; i < 32; i++ {
		yielded[members[i]] = true
	}
	for _, sem := range core.AllSemantics() {
		sem := sem
		b.Run(sem.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := core.Step(sem, pre, pre, yielded)
				if d.Kind != core.DecideYield {
					b.Fatalf("decision = %v", d.Kind)
				}
			}
		})
	}
}

// BenchmarkModelRun measures a full model-level iterator run checked
// against its own figure — the unit of work behind the conformance matrix.
func BenchmarkModelRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env := spec.NewEnv(sim.NewRand(int64(i)), 8, spec.ConstraintTrue)
		run, _ := core.RunModel(core.Optimistic, env, core.ModelConfig{
			MaxSteps:        100,
			HealAfterBlocks: 3,
			FreezeAfter:     40,
		})
		if err := spec.CheckRun(spec.Fig6, run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCRoundTrip measures one repository Get over the simulated
// network with the clock disabled (pure substrate overhead).
func BenchmarkRPCRoundTrip(b *testing.B) {
	c, err := cluster.New(cluster.Config{StorageNodes: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	ref, err := c.Client.Put(ctx, c.Storage[0], repo.Object{ID: "x", Data: make([]byte, 256)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Client.Get(ctx, ref); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIteratorLogical measures a full 32-element optimistic iteration
// with the clock disabled: the per-element protocol overhead.
func BenchmarkIteratorLogical(b *testing.B) {
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "bench"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
			Data: make([]byte, 128),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "bench", ref); err != nil {
			b.Fatal(err)
		}
	}
	set, err := core.NewSet(c.Client, cluster.DirNode, "bench", core.Options{Semantics: core.Optimistic})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		elems, err := set.Collect(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(elems) != 32 {
			b.Fatalf("yielded %d", len(elems))
		}
	}
}

// BenchmarkDynSetLogical measures a 32-element dynamic-set drain with the
// clock disabled.
func BenchmarkDynSetLogical(b *testing.B) {
	c, err := cluster.New(cluster.Config{StorageNodes: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "bench"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		ref, err := c.Client.Put(ctx, c.StorageFor(i), repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
			Data: make([]byte, 128),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "bench", ref); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.OpenDyn(ctx, c.Client, cluster.DirNode, "bench", core.DynOptions{Width: 8})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for ds.Next(ctx) {
			n++
		}
		_ = ds.Close()
		if n != 32 {
			b.Fatalf("yielded %d", n)
		}
	}
}

// BenchmarkSpecCheck measures checking a 200-invocation run against Fig 6.
func BenchmarkSpecCheck(b *testing.B) {
	env := spec.NewEnv(sim.NewRand(1), 16, spec.ConstraintTrue)
	run, _ := core.RunModel(core.Optimistic, env, core.ModelConfig{
		MaxSteps:        200,
		HealAfterBlocks: 2,
		FreezeAfter:     100,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := spec.CheckRun(spec.Fig6, run); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLatencyScaling sanity-checks the scaled clock itself: a 10ms
// virtual sleep at 100x compression should cost ~100µs wall.
func BenchmarkLatencyScaling(b *testing.B) {
	scale := sim.TimeScale(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scale.Sleep(10 * time.Millisecond)
	}
}

// startTCPArchive boots a separate-process-style repository server
// ("archive") reachable only over loopback TCP — the wire path behind
// the BenchmarkIterFetch tcp-* modes. Each dispatched RPC pays lat of
// simulated service time (a disk/WAN stand-in; loopback alone has so
// little latency that transport pipelining would disappear into noise).
func startTCPArchive(b *testing.B, lat time.Duration) (*tcprpc.Server, func()) {
	b.Helper()
	net := netsim.New(netsim.Config{})
	net.AddNode("archive")
	bus := rpc.NewBus(net)
	repoSrv, err := repo.NewServer(bus, "archive")
	if err != nil {
		b.Fatal(err)
	}
	dispatch := rpc.NewServer("archive")
	for _, method := range tcprpc.RepoMethods() {
		method := method
		dispatch.Handle(method, func(_ context.Context, from netsim.NodeID, req any) (any, error) {
			if lat > 0 {
				time.Sleep(lat)
			}
			out, _, err := bus.Call(context.Background(), "archive", "archive", method, req)
			return out, err
		})
	}
	srv, err := tcprpc.Serve("127.0.0.1:0", dispatch)
	if err != nil {
		repoSrv.Close()
		b.Fatal(err)
	}
	return srv, func() {
		srv.Close()
		repoSrv.Close()
	}
}

// BenchmarkIterFetch compares the iterator's batched fetch pipeline
// against the one-Get-per-element baseline: a 64-element snapshot
// iteration. The per-object and batched modes spread members over 4
// in-process storage nodes; the tcp-serial and tcp-mux modes host every
// member on a repository server reachable only over a real loopback
// socket, so the batched pipeline's concurrent GetBatches either queue
// behind a one-call-at-a-time client (tcp-serial, the old transport) or
// share the multiplexed stream (tcp-mux). Both of those pin the gob
// codec for comparability with older runs; tcp-mux-wb is the same
// multiplexed fetch on the negotiated wirebin codec, so the
// serialization step shows up next to the transport step.
// cmd/weakbench -iter and -rpc run the full sweeps and write
// BENCH_iter.json / BENCH_rpc.json.
func BenchmarkIterFetch(b *testing.B) {
	for _, mode := range []string{"per-object", "batched", "tcp-serial", "tcp-mux", "tcp-mux-wb"} {
		overTCP := strings.HasPrefix(mode, "tcp-")
		b.Run(mode, func(b *testing.B) {
			ctx := context.Background()
			storageNodes := 4
			if overTCP {
				storageNodes = 1
			}
			c, err := cluster.New(cluster.Config{StorageNodes: storageNodes, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			objNode := func(i int) netsim.NodeID { return c.StorageFor(i) }
			if overTCP {
				srv, stopArchive := startTCPArchive(b, time.Millisecond)
				defer stopArchive()
				client := tcprpc.Dial(srv.Addr(), "gateway")
				if mode != "tcp-mux-wb" {
					client.Codec = tcprpc.CodecGob
				}
				if mode == "tcp-serial" {
					client.MaxInflight = 1
				}
				c.Net.AddNode("archive")
				gw, err := tcprpc.NewGateway(c.Bus, "archive", client, tcprpc.RepoMethods())
				if err != nil {
					b.Fatal(err)
				}
				defer gw.Close()
				objNode = func(int) netsim.NodeID { return "archive" }
			}
			if err := c.Client.CreateCollection(ctx, cluster.DirNode, "bench"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				ref, err := c.Client.Put(ctx, objNode(i), repo.Object{
					ID:   repo.ObjectID(fmt.Sprintf("e%03d", i)),
					Data: make([]byte, 128),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Client.Add(ctx, cluster.DirNode, "bench", ref); err != nil {
					b.Fatal(err)
				}
			}
			fetch := core.FetchOptions{Disable: mode == "per-object"}
			if overTCP {
				// All 64 members live on one node; the default batch of 64
				// would ride in a single GetBatch and leave the transport
				// nothing to pipeline. 8-id batches give the prefetcher its
				// default 4 RPCs in flight — which the serialized client
				// queues one at a time and the multiplexed client overlaps.
				fetch.Batch = 8
			}
			set, err := core.NewSet(c.Client, cluster.DirNode, "bench", core.Options{
				Semantics: core.Snapshot,
				Fetch:     fetch,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				elems, err := set.Collect(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if len(elems) != 64 {
					b.Fatalf("yielded %d", len(elems))
				}
			}
		})
	}
}

// BenchmarkStoreContention compares the storage engines on the read-heavy
// parallel mix the directory node serves (List + Get with occasional
// writes). The single-mutex baseline serializes every List; the sharded
// engine answers List from an atomic copy-on-write snapshot, so its
// throughput should scale with GOMAXPROCS. cmd/weakbench -store runs the
// full worker sweep and writes BENCH_store.json.
func BenchmarkStoreContention(b *testing.B) {
	const (
		objects = 1024
		members = 256
	)
	for _, engine := range []string{"locked", "sharded"} {
		b.Run(engine, func(b *testing.B) {
			st, err := store.NewEngine(engine, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := store.SeedContention(st, store.ContentionConfig{Objects: objects, Members: members}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					switch {
					case i%64 == 0:
						id := store.ObjectID(fmt.Sprintf("o%04d", i%objects))
						if _, err := st.PutObject(store.Object{ID: id, Data: []byte("w")}); err != nil {
							b.Fatal(err)
						}
					case i%8 < 5:
						if _, _, err := st.List("bench"); err != nil {
							b.Fatal(err)
						}
					default:
						id := store.ObjectID(fmt.Sprintf("o%04d", i%objects))
						if _, err := st.GetObject(id); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}
