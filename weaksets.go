// Package weaksets is the public face of the weak-sets library: set
// abstractions for wide-area distributed systems whose membership is
// observed through an iterator, at every consistency point of Wing &
// Steere's "Specifying Weak Sets" (ICDCS 1995) design space — from fully
// immutable pessimistic sets down to the optimistic dynamic sets the paper
// implements.
//
// The package re-exports the library's stable surface so applications
// depend on a single import path:
//
//	import "weaksets"
//
//	set, err := weaksets.NewSet(client, dir, "menus", weaksets.Options{
//	    Semantics: weaksets.Optimistic,
//	})
//	it, err := set.Elements(ctx)
//	for it.Next(ctx) {
//	    e := it.Element()
//	    ...
//	}
//	err = it.Err() // nil = `returns`, ErrFailure = the paper's `fails`
//
// The substrate (simulated network, repository, lock service) lives under
// internal/; NewCluster builds a ready-to-use simulated deployment for
// applications and tests.
package weaksets

import (
	"context"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/query"
	"weaksets/internal/repo"
)

// Core weak-set types.
type (
	// Set is a weak set bound to a repository collection.
	Set = core.Set
	// Iterator is one run of the elements iterator.
	Iterator = core.Iterator
	// DynSet is a dynamic set: parallel, closest-first prefetching.
	DynSet = core.DynSet
	// Element is one yielded member.
	Element = core.Element
	// Options configures a weak set.
	Options = core.Options
	// DynOptions configures a dynamic set.
	DynOptions = core.DynOptions
	// Semantics selects a point in the design space.
	Semantics = core.Semantics
	// FetchOrder selects dynamic-set prefetch ordering.
	FetchOrder = core.FetchOrder
)

// Repository and deployment types.
type (
	// Client is a node-local handle on the distributed repository.
	Client = repo.Client
	// Object is a stored repository value.
	Object = repo.Object
	// ObjectID names an object.
	ObjectID = repo.ObjectID
	// Ref locates an object (ID plus node).
	Ref = repo.Ref
	// NodeID names a node.
	NodeID = netsim.NodeID
	// Cluster is a running simulated deployment.
	Cluster = cluster.Cluster
	// ClusterConfig sizes and seeds a cluster.
	ClusterConfig = cluster.Config
	// Query is a compiled predicate query over a collection.
	Query = query.Query
	// QueryOptions configures query execution.
	QueryOptions = query.Options
)

// The design-space points, strongest first (see Semantics).
const (
	Immutable       = core.Immutable
	ImmutablePerRun = core.ImmutablePerRun
	Snapshot        = core.Snapshot
	GrowOnly        = core.GrowOnly
	GrowOnlyPerRun  = core.GrowOnlyPerRun
	Optimistic      = core.Optimistic
)

// Dynamic-set fetch orders.
const (
	OrderClosestFirst = core.OrderClosestFirst
	OrderListing      = core.OrderListing
)

// Errors surfaced by iterators.
var (
	// ErrFailure is the paper's failure exception at set level.
	ErrFailure = core.ErrFailure
	// ErrBlocked reports an exhausted optimistic blocking budget.
	ErrBlocked = core.ErrBlocked
	// ErrClosed reports use of a closed iterator.
	ErrClosed = core.ErrClosed
)

// Well-known cluster node names.
const (
	HomeNode = cluster.HomeNode
	DirNode  = cluster.DirNode
)

// NewSet binds a weak set to collection name on directory node dir.
func NewSet(client *Client, dir NodeID, name string, opts Options) (*Set, error) {
	return core.NewSet(client, dir, name, opts)
}

// OpenDyn opens a dynamic set over the collection and starts prefetching.
func OpenDyn(ctx context.Context, client *Client, dir NodeID, name string, opts DynOptions) (*DynSet, error) {
	return core.OpenDyn(ctx, client, dir, name, opts)
}

// NewCluster builds a simulated wide-area deployment: network, RPC bus,
// repository servers, lock service, and a client homed at HomeNode.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(cfg)
}

// NewQuery compiles a predicate expression (e.g. `cuisine == "chinese" &&
// year >= 1990`) bound to a collection.
func NewQuery(client *Client, dir NodeID, coll, predicate string) (*Query, error) {
	return query.New(client, dir, coll, predicate)
}

// AllSemantics lists every implemented semantics, strongest first.
func AllSemantics() []Semantics { return core.AllSemantics() }
