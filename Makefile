# Pre-PR gate for the weak-sets repo. `make check` is what every change
# must pass before review: vet, build, the full test suite under the race
# detector, and a smoke run of the storage-engine contention benchmark.

GO ?= go

.PHONY: check vet build test race bench-store bench-iter bench sweep sweep-iter clean

check: vet build race bench-store bench-iter

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke the engine comparison: a few hundred iterations per engine is
# enough to catch regressions in the parallel List/Get hot path.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStoreContention -benchtime 2000x .

# Smoke the iterator fetch pipeline: batched vs per-object over a spread
# collection catches regressions in the elements hot path.
bench-iter:
	$(GO) test -run xxx -bench BenchmarkIterFetch -benchtime 20x .

# Full root benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate BENCH_store.json from the full contention sweep.
sweep:
	$(GO) run ./cmd/weakbench -store

# Regenerate BENCH_iter.json from the full fetch-pipeline sweep.
sweep-iter:
	$(GO) run ./cmd/weakbench -iter

clean:
	$(GO) clean ./...
