# Pre-PR gate for the weak-sets repo. `make check` is what every change
# must pass before review: vet, build, the full test suite under the race
# detector, and a smoke run of the storage-engine contention benchmark.

GO ?= go

.PHONY: check vet build test race bench-store bench sweep clean

check: vet build race bench-store

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke the engine comparison: a few hundred iterations per engine is
# enough to catch regressions in the parallel List/Get hot path.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStoreContention -benchtime 2000x .

# Full root benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate BENCH_store.json from the full contention sweep.
sweep:
	$(GO) run ./cmd/weakbench -store

clean:
	$(GO) clean ./...
