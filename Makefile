# Pre-PR gate for the weak-sets repo. `make check` is what every change
# must pass before review: vet, build, the full test suite under the race
# detector, and a smoke run of the storage-engine contention benchmark.

GO ?= go

.PHONY: check vet build test race fuzz-smoke bench-store bench-iter bench-rpc bench-obs bench-cache bench-scale bench-frontier bench-replica bench-trend bench sweep sweep-iter sweep-rpc sweep-obs sweep-cache sweep-scale sweep-frontier sweep-replica clean

check: vet build race fuzz-smoke bench-store bench-iter bench-rpc bench-obs bench-cache bench-scale bench-frontier bench-replica bench-trend

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Smoke the wire-format fuzzers: a few seconds of random frames against
# the wirebin reader and the repo message decoders. The decoders must
# error cleanly on anything malformed — never panic, never size an
# allocation off an unvalidated count. (Go runs one fuzz target per
# invocation, hence the two lines.)
fuzz-smoke:
	$(GO) test ./internal/wirebin -run xxx -fuzz FuzzReader -fuzztime 3s
	$(GO) test ./internal/repo -run xxx -fuzz FuzzWirebinDecode -fuzztime 3s

# Smoke the engine comparison: a few hundred iterations per engine is
# enough to catch regressions in the parallel List/Get hot path.
bench-store:
	$(GO) test -run xxx -bench BenchmarkStoreContention -benchtime 2000x .

# Smoke the iterator fetch pipeline: batched vs per-object over a spread
# collection catches regressions in the elements hot path. The in-process
# modes only — the tcp-* modes are bench-rpc's job.
bench-iter:
	$(GO) test -run xxx -bench 'BenchmarkIterFetch/(per-object|batched)' -benchtime 20x .

# Smoke the TCP transport: the fetch pipeline over real loopback sockets,
# serialized vs multiplexed client, on both the gob and wirebin codecs.
# Catches regressions in the seq-keyed dispatch, the per-connection
# worker pool, and the frame codec. The alloc-budget test holds the
# wirebin hot path to the allocations-per-op ceilings checked in as
# BENCH_budget.json — a codec change that starts allocating fails here,
# not in production profiles.
bench-rpc:
	$(GO) test ./internal/repo -run TestAllocBudget -count 1
	$(GO) test -run xxx -bench 'BenchmarkIterFetch/tcp' -benchtime 5x .

# Smoke the observability overhead sweep: a quick pass over the four
# instrumentation modes (off / weakness / sampled / full) catches gross
# regressions in the traced hot path. Writes to /tmp so the committed
# BENCH_obs.json (produced by sweep-obs) is left alone.
bench-obs:
	$(GO) run ./cmd/weakbench -obs -obs-quick -obs-json /tmp/BENCH_obs_smoke.json

# Smoke the element cache: a quick cold/warm/mutating pass catches
# regressions in the version-validated read path (snapshot warm runs must
# go RPC-free, unchanged sets must ship no payload). Writes to /tmp so the
# committed BENCH_cache.json (produced by sweep-cache) is left alone.
bench-cache:
	$(GO) run ./cmd/weakbench -cache -cache-quick -cache-json /tmp/BENCH_cache_smoke.json

# Smoke the listing scalability sweep: monolithic vs partitioned
# streaming listings at two small sizes catches regressions in the
# scatter-gather List path (per-element cost must stay flat, first
# element must track the first partition). Writes to /tmp so the
# committed BENCH_scale.json (produced by sweep-scale) is left alone.
bench-scale:
	$(GO) run ./cmd/weakbench -scale -scale-quick -scale-json /tmp/BENCH_scale_smoke.json

# Smoke the weakness-throughput frontier: optimistic Collects under
# churn at two reader counts, checking the sweep still produces
# populated latency and skew quantiles. Writes to /tmp so the committed
# BENCH_frontier.json (produced by sweep-frontier) is left alone.
bench-frontier:
	$(GO) run ./cmd/weakbench -frontier -frontier-quick -frontier-json /tmp/BENCH_frontier_smoke.json

# Smoke the replica-parallel read sweep: 1/2/3 replicas under churn plus
# the kill-one-replica phase, at a trimmed size. Catches regressions in
# the read router (probing, closest-first, hedging, scatter) and the
# anti-entropy plane; the kill phase must complete every run from the
# survivors. Writes to /tmp so the committed BENCH_replica.json
# (produced by sweep-replica) is left alone.
bench-replica:
	$(GO) run ./cmd/weakbench -replica -replica-quick -replica-json /tmp/BENCH_replica_smoke.json

# Trend gate: re-run the quick store, iter, cache, TCP, obs, and scale
# sweeps and compare their size-independent figures (sharded-engine
# speedup, batched-fetch speedup, bytes elided warm, leased steady-state
# RPCs/run, multiplexing and codec speedups, obs overhead, listing
# degradation caps) against the committed BENCH_*.json reports. Fails
# loudly on reproducible regressions — a failing sweep is re-measured
# once to absorb host noise; absolute throughput is never compared, so
# it is machine-portable.
bench-trend:
	$(GO) run ./cmd/weakbench -trend

# Full root benchmark suite (slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate BENCH_store.json from the full contention sweep.
sweep:
	$(GO) run ./cmd/weakbench -store

# Regenerate BENCH_iter.json from the full fetch-pipeline sweep.
sweep-iter:
	$(GO) run ./cmd/weakbench -iter

# Regenerate BENCH_rpc.json from the full TCP transport sweep.
sweep-rpc:
	$(GO) run ./cmd/weakbench -rpc

# Regenerate BENCH_obs.json from the full observability overhead sweep.
sweep-obs:
	$(GO) run ./cmd/weakbench -obs

# Regenerate BENCH_cache.json from the full element-cache sweep.
sweep-cache:
	$(GO) run ./cmd/weakbench -cache

# Regenerate BENCH_scale.json from the full listing-scalability sweep
# (10k to 1M elements; slow).
sweep-scale:
	$(GO) run ./cmd/weakbench -scale

# Regenerate BENCH_frontier.json from the full weakness-throughput
# frontier sweep (1 to 16 concurrent readers under churn).
sweep-frontier:
	$(GO) run ./cmd/weakbench -frontier

# Regenerate BENCH_replica.json from the full replica-parallel read
# sweep (16 readers, 1/2/3 replicas under churn, kill phase; slow).
sweep-replica:
	$(GO) run ./cmd/weakbench -replica

clean:
	$(GO) clean ./...
