// Library: the paper's library-information-system query — "through the
// on-line library information system you want to get a list of papers by a
// particular author" (§1). The catalog is Zipf-placed over archive servers
// (popular archives hold more) and one archive is flaky. The example
// contrasts the strict, all-or-nothing query with the weak-set query that
// returns the accessible papers, and demonstrates stale replica reads.
//
// Run with:
//
//	go run ./examples/library
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := cluster.New(cluster.Config{
		StorageNodes: 5,
		Seed:         1995,
		Scale:        0.01,
		Latency:      sim.Fixed(20 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	authors := []string{"wing", "steere", "liskov", "satyanarayanan"}
	corpus, err := wais.BuildLibrary(ctx, c, authors, 8)
	if err != nil {
		return err
	}
	fmt.Printf("catalog: %d papers by %d authors, Zipf-placed over %d archives\n\n",
		len(corpus.Refs), len(authors), len(c.Storage))

	// One archive goes down — the common case the paper designs for.
	c.Net.Isolate(c.Storage[1])
	fmt.Printf("archive %s is unreachable\n\n", c.Storage[1])

	// The strict query (grow-only pessimistic): all papers or a failure.
	strict, err := core.NewSet(c.Client, corpus.Dir, corpus.Coll, core.Options{
		Semantics: core.GrowOnly,
	})
	if err != nil {
		return err
	}
	got, err := strict.Collect(ctx)
	if errors.Is(err, core.ErrFailure) {
		fmt.Printf("strict query:   FAILED after %d papers (an archive is down)\n", len(got))
	} else if err != nil {
		return err
	}

	// The weak query (dynamic set): every accessible paper, fast.
	elapsed := sim.TimeScale(0.01).Stopwatch()
	ds, err := core.OpenDyn(ctx, c.Client, corpus.Dir, corpus.Coll, core.DynOptions{Width: 8})
	if err != nil {
		return err
	}
	defer func() { _ = ds.Close() }()
	byWing := 0
	total := 0
	for ds.Next(ctx) {
		total++
		if ds.Element().Attrs["author"] == "wing" {
			byWing++
		}
	}
	fmt.Printf("weak query:     %d papers in %v virtual (%d unreachable skipped)\n",
		total, elapsed().Round(time.Millisecond), len(ds.Skipped()))
	fmt.Printf("papers by wing: %d\n\n", byWing)

	// Stale replicas: the catalog is lazily replicated to a nearby mirror;
	// reads against the mirror can miss the newest paper for a while —
	// "one node may have more up-to-date information than another; cached
	// data may be stale" (§3).
	c.Net.Heal()
	mirror := c.Storage[0]
	if err := c.Servers[cluster.DirNode].ReplicateCollection(corpus.Coll, []netsim.NodeID{mirror}); err != nil {
		return err
	}
	time.Sleep(10 * time.Millisecond) // let the initial push land

	c.Net.Isolate(mirror) // the mirror misses the next update
	newPaper := repo.Object{
		ID:    "lis-new-wing-paper",
		Data:  []byte("Specifying Weak Sets"),
		Attrs: map[string]string{"author": "wing", "year": "1995"},
	}
	ref, err := c.Client.Put(ctx, c.Storage[2], newPaper)
	if err != nil {
		return err
	}
	if err := c.Client.Add(ctx, corpus.Dir, corpus.Coll, ref); err != nil {
		return err
	}
	c.Net.Rejoin(mirror)

	primary, _, err := c.Client.List(ctx, corpus.Dir, corpus.Coll)
	if err != nil {
		return err
	}
	mirrored, _, err := c.Client.List(ctx, mirror, corpus.Coll)
	if err != nil {
		return err
	}
	fmt.Printf("after adding a new paper: primary lists %d, stale mirror lists %d\n",
		len(primary), len(mirrored))
	fmt.Println("two people running the same query at the same time may obtain")
	fmt.Println("different sets of elements — as §1 of the paper says they may.")
	return nil
}
