// TCP archive: weak sets over a real socket. A repository server runs as
// if it were a separate process, reachable only over TCP on loopback; a
// gateway splices it into a simulated cluster as node "archive", and a
// weak set iterates a collection whose members live there — proving the
// stack is not tied to the simulator. The simulated network still governs
// the local leg, so partitioning the gateway node cuts the archive off.
//
// Run with:
//
//	go run ./examples/tcparchive
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/netsim"
	"weaksets/internal/obs"
	"weaksets/internal/repo"
	"weaksets/internal/rpc"
	"weaksets/internal/tcprpc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// startArchive boots the "remote process": its own network, bus,
// repository server and tracer, exposed over TCP. Its spans join traces
// whose context arrives in the request envelopes.
func startArchive(tracer *obs.Tracer) (*tcprpc.Server, func(), error) {
	net := netsim.New(netsim.Config{})
	net.AddNode("archive")
	bus := rpc.NewBus(net)
	bus.UseTracer(tracer)
	repoSrv, err := repo.NewServer(bus, "archive")
	if err != nil {
		return nil, nil, err
	}
	repoSrv.UseTracer(tracer)
	dispatch := rpc.NewServer("archive")
	for _, method := range tcprpc.RepoMethods() {
		method := method
		dispatch.Handle(method, func(ctx context.Context, from netsim.NodeID, req any) (any, error) {
			out, _, err := bus.Call(ctx, "archive", "archive", method, req)
			return out, err
		})
	}
	srv, err := tcprpc.ServeConfig("127.0.0.1:0", dispatch, tcprpc.ServerConfig{Tracer: tracer})
	if err != nil {
		repoSrv.Close()
		return nil, nil, err
	}
	cleanup := func() {
		srv.Close()
		repoSrv.Close()
	}
	return srv, cleanup, nil
}

func run() error {
	// One tracer per process: the archive's spans and the client's spans
	// carry the same trace ids, stitched by the envelope's trace context.
	archiveTracer := obs.NewTracer("archive", obs.Config{})
	clientTracer := obs.NewTracer("client", obs.Config{})
	weakness := obs.NewRegistry()

	archive, stopArchive, err := startArchive(archiveTracer)
	if err != nil {
		return err
	}
	defer stopArchive()
	fmt.Printf("archive process serving on tcp://%s\n", archive.Addr())

	// The local cluster, with the archive spliced in through a gateway.
	c, err := cluster.New(cluster.Config{StorageNodes: 2, Seed: 3})
	if err != nil {
		return err
	}
	defer c.Close()
	c.UseTracer(clientTracer)
	ctx := context.Background()
	c.Net.AddNode("archive")
	remote := tcprpc.Dial(archive.Addr(), "gateway")
	remote.Tracer = clientTracer
	gw, err := tcprpc.NewGateway(c.Bus, "archive", remote, tcprpc.RepoMethods())
	if err != nil {
		return err
	}
	defer gw.Close()

	// A catalog on the local directory, with papers stored at the archive.
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "catalog"); err != nil {
		return err
	}
	titles := []string{"weak-sets.ps", "dynamic-sets.ps", "coda.ps", "larch.ps"}
	for i, title := range titles {
		obj := repo.Object{
			ID:    repo.ObjectID(fmt.Sprintf("paper-%d", i)),
			Data:  []byte("postscript for " + title),
			Attrs: map[string]string{"title": title},
		}
		ref, err := c.Client.Put(ctx, "archive", obj)
		if err != nil {
			return err
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "catalog", ref); err != nil {
			return err
		}
	}

	set, err := core.NewSet(c.Client, cluster.DirNode, "catalog", core.Options{
		Semantics: core.Optimistic,
		Tracer:    clientTracer,
		Weakness:  weakness,
	})
	if err != nil {
		return err
	}
	elems, err := set.Collect(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("weak set retrieved %d papers through the TCP gateway:\n", len(elems))
	for _, e := range elems {
		fmt.Printf("  %-12s %s (%d bytes)\n", e.Ref.ID, e.Attrs["title"], len(e.Data))
	}

	ts := gw.Stats()
	fmt.Printf("\ntransport: %d calls over %d dial(s), peak %d in flight\n",
		ts.Calls, ts.Dials, ts.MaxInFlight)
	for _, m := range ts.Methods {
		fmt.Printf("  %-16s n=%-3d p99=%v\n", m.Method, m.Count, m.P99.Round(10*time.Microsecond))
	}

	// The run's weakness report, and its trace — one coherent tree even
	// though half the spans were recorded in the "archive" process and
	// crossed a real socket.
	if rep, ok := weakness.Last("catalog"); ok {
		fmt.Println()
		obs.RenderWeakness(os.Stdout, rep)
		spans := clientTracer.Trace(rep.Trace)
		spans = append(spans, archiveTracer.Trace(rep.Trace)...)
		fmt.Println()
		obs.RenderTrace(os.Stdout, spans)
	}

	// The simulated partition still applies to the gateway node.
	c.Net.Isolate("archive")
	pess, err := core.NewSet(c.Client, cluster.DirNode, "catalog", core.Options{Semantics: core.GrowOnly})
	if err != nil {
		return err
	}
	if _, err := pess.Collect(ctx); errors.Is(err, core.ErrFailure) {
		fmt.Println("\nafter partitioning the gateway node, the pessimistic run fails —")
		fmt.Println("the simulated failure model composes with the real transport.")
	}
	return nil
}
