// Quickstart: build a small simulated wide-area repository, bind a weak
// set to a collection whose members live on different nodes, and iterate
// it under two semantics — pessimistic (fails when members are
// unreachable) and optimistic (yields what it can, waits out the failure).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/repo"
	"weaksets/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A simulated wide-area system: a home workstation, a directory node,
	// and four storage nodes 10ms away; virtual time runs 100x fast.
	c, err := cluster.New(cluster.Config{
		StorageNodes: 4,
		Seed:         1,
		Scale:        0.01,
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	// Create a collection and scatter six objects over the storage nodes.
	if err := c.Client.CreateCollection(ctx, cluster.DirNode, "greetings"); err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		obj := repo.Object{
			ID:   repo.ObjectID(fmt.Sprintf("hello-%d", i)),
			Data: []byte(fmt.Sprintf("hello from object %d", i)),
		}
		ref, err := c.Client.Put(ctx, c.StorageFor(i), obj)
		if err != nil {
			return err
		}
		if err := c.Client.Add(ctx, cluster.DirNode, "greetings", ref); err != nil {
			return err
		}
	}

	// Iterate with the optimistic (Fig. 6) semantics: the weakest, most
	// available point of the paper's design space.
	set, err := core.NewSet(c.Client, cluster.DirNode, "greetings", core.Options{
		Semantics: core.Optimistic,
	})
	if err != nil {
		return err
	}
	fmt.Println("healthy network, optimistic semantics:")
	elems, err := set.Collect(ctx)
	if err != nil {
		return err
	}
	for _, e := range elems {
		fmt.Printf("  %s @ %s: %q\n", e.Ref.ID, e.Ref.Node, e.Data)
	}

	// Now partition a storage node away and compare the design points.
	c.Net.Isolate(c.Storage[0])
	fmt.Println("\nstorage node s0 partitioned away:")

	pess, err := core.NewSet(c.Client, cluster.DirNode, "greetings", core.Options{
		Semantics: core.GrowOnly, // Fig. 5: pessimistic
	})
	if err != nil {
		return err
	}
	got, err := pess.Collect(ctx)
	fmt.Printf("  grow-only (pessimistic): %d elements, then error: %v\n", len(got), err)

	opt, err := core.NewSet(c.Client, cluster.DirNode, "greetings", core.Options{
		Semantics:  core.Optimistic,
		BlockRetry: 20 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	it, err := opt.Elements(ctx)
	if err != nil {
		return err
	}
	defer it.Close(ctx)

	// The optimistic iterator yields everything reachable, then blocks
	// waiting for the partition to heal — so heal it.
	go func() {
		time.Sleep(50 * time.Millisecond) // wall time; = 5s virtual
		c.Net.Rejoin(c.Storage[0])
	}()
	n := 0
	for it.Next(ctx) {
		n++
	}
	if err := it.Err(); err != nil {
		return err
	}
	fmt.Printf("  optimistic: yielded all %d elements — it waited out the failure\n", n)
	return nil
}
