// Specwalk: a guided walk through the executable specifications. It
// prints the paper's Figure 6 spec, drives the optimistic kernel step by
// step through a hand-built scenario — mutation, failure, blocking,
// repair — narrating every invocation, and then checks the recorded run
// against every figure to show where it sits in the design-space lattice.
//
// Run with:
//
//	go run ./examples/specwalk
package main

import (
	"fmt"
	"sort"
	"strings"

	"weaksets/internal/core"
	"weaksets/internal/spec"
)

func main() {
	fmt.Println(spec.Render(spec.Fig6))
	fmt.Println()

	// The world: elements a, b, c; b's node is down at first.
	env := struct {
		members map[spec.ElemID]bool
		reach   map[spec.ElemID]bool
	}{
		members: map[spec.ElemID]bool{"a": true, "b": true, "c": true},
		reach:   map[spec.ElemID]bool{"a": true, "c": true},
	}
	state := func() spec.State {
		var m, r []spec.ElemID
		for e := range env.members {
			m = append(m, e)
		}
		for e := range env.reach {
			r = append(r, e)
		}
		return spec.NewState(m, r)
	}

	rec := spec.NewRecorder()
	yielded := make(map[spec.ElemID]bool)
	first := state()
	step := 0
	invoke := func(note string) {
		step++
		pre := state()
		d := core.Step(core.Optimistic, first, pre, yielded)
		switch d.Kind {
		case core.DecideYield:
			rec.Record(pre, spec.Suspended, d.Elem, true)
			yielded[d.Elem] = true
			fmt.Printf("invocation %d: members=%s reachable=%s -> yield %q, suspends   (%s)\n",
				step, fmtSet(pre.Members), fmtSet(pre.Reach), d.Elem, note)
		case core.DecideBlock:
			rec.Record(pre, spec.Blocked, "", false)
			fmt.Printf("invocation %d: members=%s reachable=%s -> BLOCKS             (%s)\n",
				step, fmtSet(pre.Members), fmtSet(pre.Reach), note)
		case core.DecideReturn:
			rec.Record(pre, spec.Returned, "", false)
			fmt.Printf("invocation %d: members=%s -> returns                          (%s)\n",
				step, fmtSet(pre.Members), note)
		case core.DecideFail:
			rec.Record(pre, spec.Failed, "", false)
			fmt.Printf("invocation %d: FAILS (%s)\n", step, note)
		}
	}

	invoke("fresh start: yields the smallest reachable member")
	env.members["d"] = true // a concurrent writer adds d...
	env.reach["d"] = true
	invoke("a writer added d mid-run; c is still next in order")
	delete(env.members, "c") // ...and deletes c, which was already yielded
	invoke("the mid-run addition d is yielded — Fig 6 must not miss it")
	invoke("only the unreachable b remains: the optimistic iterator waits")
	env.reach["b"] = true // the partition heals
	invoke("the failure was repaired; b is reachable again")
	invoke("everything in the current set has been yielded")

	fmt.Println()
	fmt.Println("checking the recorded run against every figure:")
	run := rec.Run()
	for _, fig := range spec.Figures() {
		err := spec.CheckRun(fig, run)
		verdict := "conforms"
		if err != nil {
			verdict = "violates: " + firstLine(err.Error())
		}
		fmt.Printf("  %-22s %s\n", fig.String(), verdict)
	}
	fmt.Println()
	fmt.Println("the run conforms to its own figure (Fig 6) and breaks the stricter")
	fmt.Println("ones — the blocking outcome and the mid-run addition are exactly what")
	fmt.Println("the pessimistic and snapshot specifications forbid.")
}

func fmtSet(s map[spec.ElemID]bool) string {
	ids := make([]string, 0, len(s))
	for e := range s {
		ids = append(ids, string(e))
	}
	sort.Strings(ids)
	return "{" + strings.Join(ids, ",") + "}"
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
