// Webfaces: the paper's opening scenario — "suppose you are browsing the
// World Wide Web and want to display the .face files of all people listed
// on Carnegie Mellon's home page" (§1). The faces live on many servers at
// very different distances, and one server is down. A dynamic set streams
// the faces to the renderer as they arrive, closest first, at every
// prefetch width — next to the sequential fetch a naive browser would do.
//
// Run with:
//
//	go run ./examples/webfaces
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/metrics"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const scale = sim.TimeScale(0.01)
	c, err := cluster.New(cluster.Config{
		StorageNodes: 8,
		Seed:         31,
		Scale:        scale,
		Latency:      sim.Fixed(10 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	// Servers sit 5..40ms away, one-way.
	for i, node := range c.Storage {
		c.Net.SetLinkLatency(cluster.HomeNode, node, sim.Fixed(time.Duration(i+1)*5*time.Millisecond))
	}
	corpus, err := wais.BuildFaces(ctx, c, 40)
	if err != nil {
		return err
	}
	// One department's server is down today.
	c.Net.Isolate(c.Storage[7])
	fmt.Printf("home page lists %d people; server %s is down\n\n", len(corpus.Refs), c.Storage[7])

	for _, width := range []int{1, 4, 16} {
		elapsed := scale.Stopwatch()
		ds, err := core.OpenDyn(ctx, c.Client, corpus.Dir, corpus.Coll, core.DynOptions{Width: width})
		if err != nil {
			return err
		}
		var first, tenth time.Duration
		n := 0
		for ds.Next(ctx) {
			n++
			switch n {
			case 1:
				first = elapsed()
			case 10:
				tenth = elapsed()
			}
		}
		total := elapsed()
		skipped := len(ds.Skipped())
		_ = ds.Close()
		fmt.Printf("width %2d: first face %7s, tenth %7s, all %d rendered in %7s (%d unreachable)\n",
			width, metrics.FmtDur(first), metrics.FmtDur(tenth), n, metrics.FmtDur(total), skipped)
	}

	fmt.Println("\nthe page \"fills in\" as faces arrive — the paper's partial-information")
	fmt.Println("property (§1.1) — and the width-16 page completes an order of magnitude")
	fmt.Println("sooner than a sequential fetch, never blocking on the dead server.")
	return nil
}
