// Restaurants: the paper's motivating query — "you are a tourist in
// Pittsburgh and want to look at the on-line menus of all Chinese
// restaurants before choosing where to eat" (§1). Menus are scattered
// across servers and edited while you browse; this example runs the same
// query under snapshot (Fig. 4) and optimistic (Fig. 6) semantics
// concurrently with a stream of menu additions and closures, and shows the
// anomalies each point of the design space tolerates.
//
// Run with:
//
//	go run ./examples/restaurants
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"weaksets/internal/cluster"
	"weaksets/internal/core"
	"weaksets/internal/sim"
	"weaksets/internal/wais"
	"weaksets/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := cluster.New(cluster.Config{
		StorageNodes: 6,
		Seed:         2026,
		Scale:        0.01,
		Latency:      sim.Fixed(15 * time.Millisecond),
	})
	if err != nil {
		return err
	}
	defer c.Close()
	ctx := context.Background()

	corpus, err := wais.BuildRestaurants(ctx, c, 30)
	if err != nil {
		return err
	}
	fmt.Printf("built %d restaurant menus over %d servers\n\n", len(corpus.Refs), len(c.Storage))

	// A city guide editor keeps updating listings while we browse: a new
	// restaurant every 120ms, a closure every 200ms (virtual time).
	mut := workload.NewMutator(workload.MutatorConfig{
		Client:      c.ClientAt(c.Storage[0]),
		Dir:         corpus.Dir,
		Coll:        corpus.Coll,
		AddEvery:    120 * time.Millisecond,
		RemoveEvery: 200 * time.Millisecond,
		ObjectNodes: c.Storage,
		ObjectSize:  512,
		IDPrefix:    "new-restaurant",
		Initial:     corpus.Refs,
		Rand:        sim.NewRand(9),
	})
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mut.Start(mctx)

	for _, sem := range []core.Semantics{core.Snapshot, core.Optimistic} {
		set, err := core.NewSet(c.Client, corpus.Dir, corpus.Coll, core.Options{
			Semantics:  sem,
			BlockRetry: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		elems, err := set.Collect(ctx)
		if err != nil {
			return err
		}
		chinese, stale, added := 0, 0, 0
		for _, e := range elems {
			if e.Stale {
				stale++
				continue
			}
			if e.Attrs["cuisine"] == "chinese" {
				chinese++
			}
			if len(e.Ref.ID) > 4 && string(e.Ref.ID[:3]) == "new" {
				added++
			}
		}
		fmt.Printf("%-10s browsed %d listings: %d chinese, %d added-while-browsing, %d already-closed\n",
			sem.String()+":", len(elems), chinese, added, stale)
	}
	cancel()
	mut.Stop()

	fmt.Printf("\neditor activity during the browse: %d openings, %d closures\n",
		len(mut.Added()), len(mut.Removed()))
	fmt.Println("snapshot freezes the city at the moment you asked; optimistic sees")
	fmt.Println("openings as they happen and may briefly show a closed restaurant —")
	fmt.Println("exactly the Fig. 4 / Fig. 6 trade the paper specifies.")
	return nil
}
